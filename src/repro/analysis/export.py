"""CSV export of every figure's data series.

Downstream users plot with their own tools; :func:`export_all_figures`
writes one tidy CSV per paper figure into a results directory. Files
are plain ``csv`` module output -- no extra dependencies -- with a
header row and long-format columns (one observation per row).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.figures import (
    figure3_alice_t3,
    figure4_bob_t2,
    figure5_alice_t1,
    figure6_success_rate,
    figure7_bob_t2_collateral,
    figure9_sr_collateral,
)
from repro.core.parameters import SwapParameters

__all__ = ["write_csv", "export_all_figures"]


def write_csv(path: Path, header: Sequence[str], rows: Sequence[Sequence]) -> None:
    """Write one CSV file, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)


def _figure3_rows(params) -> List[List]:
    fig = figure3_alice_t3(params)
    rows: List[List] = []
    for pstar, cont, stop, threshold in fig.curves:
        for p3, value in zip(fig.p3_grid, cont):
            rows.append([pstar, p3, value, stop, threshold])
    return rows


def _figure4_rows(params) -> List[List]:
    fig = figure4_bob_t2(params)
    rows: List[List] = []
    for pstar, cont, bounds in fig.curves:
        lo, hi = bounds if bounds else (float("nan"), float("nan"))
        for p2, value in zip(fig.p2_grid, cont):
            rows.append([pstar, p2, value, p2, lo, hi])
    return rows


def _figure5_rows(params) -> List[List]:
    fig = figure5_alice_t1(params)
    lo, hi = fig.feasible_range if fig.feasible_range else (float("nan"),) * 2
    return [
        [k, cont, stop, lo, hi]
        for k, cont, stop in zip(fig.pstar_grid, fig.cont_values, fig.stop_values)
    ]


def _figure6_rows(params) -> List[List]:
    fig = figure6_success_rate(params, n_points=15)
    rows: List[List] = []
    for panel in fig.panels:
        for curve in panel.curves:
            if not curve.viable:
                rows.append([panel.parameter, curve.value, float("nan"),
                             float("nan"), False])
                continue
            for k, rate in zip(curve.pstars, curve.rates):
                rows.append([panel.parameter, curve.value, k, rate, True])
    return rows


def _figure7_rows(params) -> List[List]:
    fig = figure7_bob_t2_collateral(params)
    rows: List[List] = []
    for pstar, q, cont, region in fig.curves:
        pieces = ";".join(f"{lo:.6g}:{hi:.6g}" for lo, hi in region.intervals)
        for p2, value in zip(fig.p2_grid, cont):
            rows.append([pstar, q, p2, value, pieces])
    return rows


def _figure9_rows(params) -> List[List]:
    fig = figure9_sr_collateral(params)
    rows: List[List] = []
    for q, rates in fig.curves:
        for k, rate in zip(fig.pstar_grid, rates):
            rows.append([q, k, rate])
    return rows


_EXPORTERS = {
    "figure3.csv": (
        ["pstar", "p3", "u_cont", "u_stop", "threshold"],
        _figure3_rows,
    ),
    "figure4.csv": (
        ["pstar", "p2", "u_cont", "u_stop", "region_low", "region_high"],
        _figure4_rows,
    ),
    "figure5.csv": (
        ["pstar", "u_cont", "u_stop", "feasible_low", "feasible_high"],
        _figure5_rows,
    ),
    "figure6.csv": (
        ["parameter", "value", "pstar", "success_rate", "viable"],
        _figure6_rows,
    ),
    "figure7.csv": (
        ["pstar", "collateral", "p2", "u_cont", "continuation_region"],
        _figure7_rows,
    ),
    "figure9.csv": (
        ["collateral", "pstar", "success_rate"],
        _figure9_rows,
    ),
}


def export_all_figures(
    out_dir: Path,
    params: Optional[SwapParameters] = None,
) -> Dict[str, Path]:
    """Write every figure's CSV into ``out_dir``; returns name -> path."""
    if params is None:
        params = SwapParameters.default()
    out_dir = Path(out_dir)
    written: Dict[str, Path] = {}
    for name, (header, producer) in _EXPORTERS.items():
        path = out_dir / name
        write_csv(path, header, producer(params))
        written[name] = path
    return written
