"""Local comparative statics of the success rate.

Central finite differences of ``SR`` (at a fixed ``P*`` or at the
SR-maximising ``P*``) with respect to each model parameter; the signs
reproduce the paper's Section III-F statements (e.g. ``dSR/d alpha >
0``, ``dSR/d sigma < 0`` at the optimum).

Vectorisation note: the grid engine (:mod:`repro.core.engine`) batches
over ``P*`` for *one* parameter set, and every finite-difference
evaluation here perturbs the parameters themselves, so the per-point
calls cannot be fused into one grid solve. The expensive default mode
(``pstar=None``) still rides the engine indirectly: each perturbed
model's :func:`max_success_rate` does its coarse ``P*`` scan and
feasible-range search as vectorised grid passes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.core.parameters import SwapParameters
from repro.core.success_rate import max_success_rate, success_rate

__all__ = ["SensitivityEntry", "sr_sensitivity"]

DEFAULT_STEPS: Dict[str, float] = {
    "alpha_a": 0.02,
    "alpha_b": 0.02,
    "r_a": 0.001,
    "r_b": 0.001,
    "tau_a": 0.25,
    "tau_b": 0.25,
    "mu": 0.0005,
    "sigma": 0.005,
}


@dataclass(frozen=True)
class SensitivityEntry:
    """One parameter's local effect on SR."""

    parameter: str
    step: float
    sr_minus: float
    sr_plus: float

    @property
    def derivative(self) -> float:
        """Central-difference estimate of ``dSR/d parameter``."""
        return (self.sr_plus - self.sr_minus) / (2.0 * self.step)

    @property
    def sign(self) -> int:
        """-1, 0 or +1."""
        d = self.derivative
        return (d > 0) - (d < 0)


def sr_sensitivity(
    params: Optional[SwapParameters] = None,
    pstar: Optional[float] = None,
    parameters: Optional[Sequence[str]] = None,
    steps: Optional[Dict[str, float]] = None,
) -> Dict[str, SensitivityEntry]:
    """Central-difference SR sensitivities.

    With ``pstar=None``, SR is evaluated at each perturbed model's *own*
    optimal rate (the paper's "when P* is chosen optimally" convention,
    Section III-F3); otherwise at the fixed ``pstar``.
    """
    if params is None:
        params = SwapParameters.default()
    if steps is None:
        steps = DEFAULT_STEPS
    if parameters is None:
        parameters = tuple(steps)

    def evaluate(p: SwapParameters) -> float:
        if pstar is not None:
            return success_rate(p, pstar)
        located = max_success_rate(p)
        return located[1] if located is not None else 0.0

    out: Dict[str, SensitivityEntry] = {}
    base_values = params.as_dict()
    for name in parameters:
        h = steps[name]
        lo = params.replace(**{name: base_values[name] - h})
        hi = params.replace(**{name: base_values[name] + h})
        out[name] = SensitivityEntry(
            parameter=name,
            step=h,
            sr_minus=evaluate(lo),
            sr_plus=evaluate(hi),
        )
    return out
