"""Experiment generators: every table and figure in the paper.

* :mod:`repro.analysis.tables` -- Tables I and III;
* :mod:`repro.analysis.figures` -- Figures 2-9 data series;
* :mod:`repro.analysis.sweep` -- generic parameter sweeps (Figure 6's
  panels);
* :mod:`repro.analysis.sensitivity` -- local comparative statics;
* :mod:`repro.analysis.report` -- plain-text rendering (ASCII tables
  and line charts) so every artifact prints in a terminal.
"""

from repro.analysis.figures import (
    figure2_timeline,
    figure3_alice_t3,
    figure4_bob_t2,
    figure5_alice_t1,
    figure6_success_rate,
    figure7_bob_t2_collateral,
    figure8_t1_collateral,
    figure9_sr_collateral,
)
from repro.analysis.report import ascii_chart, format_table
from repro.analysis.sensitivity import sr_sensitivity
from repro.analysis.sweep import sweep_parameter
from repro.analysis.tables import table1_balance_change, table3_default_parameters
from repro.analysis.welfare import optimal_rates, welfare_curve
from repro.analysis.export import export_all_figures
from repro.analysis.experiments import render_markdown, run_all_experiments

__all__ = [
    "figure2_timeline",
    "figure3_alice_t3",
    "figure4_bob_t2",
    "figure5_alice_t1",
    "figure6_success_rate",
    "figure7_bob_t2_collateral",
    "figure8_t1_collateral",
    "figure9_sr_collateral",
    "table1_balance_change",
    "table3_default_parameters",
    "sweep_parameter",
    "sr_sensitivity",
    "optimal_rates",
    "welfare_curve",
    "export_all_figures",
    "run_all_experiments",
    "render_markdown",
    "ascii_chart",
    "format_table",
]
