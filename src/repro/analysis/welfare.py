"""Welfare analysis: whose rate is the right rate?

The paper studies the *success rate*; market designers also care about
*welfare* -- the agents' combined expected utility. Because utilities
are denominated in the same numéraire (Assumption 3), they can be
summed:

* ``welfare(P*) = U^A_{t1}(eq) + U^B_{t1}(eq)`` where each agent's
  equilibrium value is ``max(cont, stop)``;
* the *gains from trade* are welfare minus the no-trade outside option
  ``P* + p0``... careful: Alice's outside option is ``P*`` only in the
  sense of Eq. (27) -- she keeps the Token_a she would have swapped --
  so the natural baseline is ``U^A(stop) + U^B(stop)``;
* the SR-maximising, Alice-optimal, Bob-optimal and welfare-optimal
  rates generally differ; this module computes all four and the
  welfare cost of picking each.

Used by the ablation benchmarks to show the SR-optimal rate is *not*
the welfare-optimal one in general (they are close under the symmetric
Table III defaults).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.backward_induction import BackwardInduction
from repro.core.feasible_range import feasible_pstar_range
from repro.core.parameters import SwapParameters
from repro.core.success_rate import max_success_rate

__all__ = ["WelfarePoint", "welfare_curve", "optimal_rates", "RateComparison"]


@dataclass(frozen=True)
class WelfarePoint:
    """Welfare decomposition at one exchange rate."""

    pstar: float
    alice_value: float
    bob_value: float
    alice_outside: float
    bob_outside: float
    success_rate: float

    @property
    def welfare(self) -> float:
        """Combined equilibrium value."""
        return self.alice_value + self.bob_value

    @property
    def gains_from_trade(self) -> float:
        """Welfare in excess of both agents' stop values."""
        return self.welfare - self.alice_outside - self.bob_outside


def welfare_point(params: SwapParameters, pstar: float) -> WelfarePoint:
    """Evaluate welfare at one rate."""
    solver = BackwardInduction(params, pstar)
    alice_cont = solver.alice_t1_cont()
    alice_stop = solver.alice_t1_stop()
    bob_value = (
        solver.bob_t1_cont() if alice_cont > alice_stop else solver.bob_t1_stop()
    )
    return WelfarePoint(
        pstar=float(pstar),
        alice_value=max(alice_cont, alice_stop),
        bob_value=bob_value,
        alice_outside=alice_stop,
        bob_outside=solver.bob_t1_stop(),
        success_rate=solver.success_rate() if alice_cont > alice_stop else 0.0,
    )


def welfare_curve(
    params: SwapParameters, pstars: Sequence[float]
) -> List[WelfarePoint]:
    """Welfare across a grid of rates."""
    return [welfare_point(params, float(k)) for k in pstars]


@dataclass(frozen=True)
class RateComparison:
    """The four natural choices of exchange rate and their trade-offs.

    All objective values are *surpluses* over the no-trade outside
    option (levels are not comparable across P*: the rate itself sets
    Alice's Token_a endowment).
    """

    sr_optimal: Tuple[float, float]          # (pstar, SR)
    welfare_optimal: Tuple[float, float]     # (pstar, gains from trade)
    alice_optimal: Tuple[float, float]       # (pstar, Alice surplus)
    bob_optimal: Tuple[float, float]         # (pstar, Bob surplus)

    def describe(self) -> str:
        """Four-line summary."""
        return "\n".join(
            [
                f"SR-optimal      P* = {self.sr_optimal[0]:.4f}"
                f" (SR = {self.sr_optimal[1]:.4f})",
                f"welfare-optimal P* = {self.welfare_optimal[0]:.4f}"
                f" (GFT = {self.welfare_optimal[1]:.4f})",
                f"Alice-optimal   P* = {self.alice_optimal[0]:.4f}"
                f" (U^A = {self.alice_optimal[1]:.4f})",
                f"Bob-optimal     P* = {self.bob_optimal[0]:.4f}"
                f" (U^B = {self.bob_optimal[1]:.4f})",
            ]
        )


def optimal_rates(
    params: SwapParameters, n_grid: int = 60
) -> Optional[RateComparison]:
    """Locate the four optima over the feasible window.

    Returns ``None`` when no feasible rate exists.
    """
    bounds = feasible_pstar_range(params)
    if bounds is None:
        return None
    lo, hi = bounds
    grid = np.linspace(lo * 1.001, hi * 0.999, n_grid)
    points = welfare_curve(params, grid)

    # levels are ill-posed across P* (Alice's endowment IS P* Token_a),
    # so optimise surpluses: gains-from-trade and per-agent advantages
    best_welfare = max(points, key=lambda p: p.gains_from_trade)
    best_alice = max(points, key=lambda p: p.alice_value - p.alice_outside)
    best_bob = max(points, key=lambda p: p.bob_value - p.bob_outside)
    located = max_success_rate(params)
    assert located is not None  # feasible range exists
    return RateComparison(
        sr_optimal=located,
        welfare_optimal=(best_welfare.pstar, best_welfare.gains_from_trade),
        alice_optimal=(
            best_alice.pstar, best_alice.alice_value - best_alice.alice_outside
        ),
        bob_optimal=(best_bob.pstar, best_bob.bob_value - best_bob.bob_outside),
    )
