"""Data generators for every figure in the paper.

Each ``figureN_*`` function computes the exact series the corresponding
paper figure plots and returns a small dataclass with a ``render()``
method producing terminal output. Numeric assertions about the shapes
(concavity, orderings, crossings) live in the benchmark/test suites;
these generators are pure data producers.

Figures whose series are per-``P*`` equilibria (5, 6, 8, 9) are solved
through the service layer: rely on the shared default to get caching
across repeated artifact runs. Under the hood the service's sweep verb
evaluates each panel's whole ``P*`` grid as one vectorised pass through
the grid engine (:func:`repro.core.engine.solve_grid`), so a 256-point
curve costs one array solve rather than 256 backward inductions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.service.api import SwapService

from repro.analysis.report import ascii_chart, format_table
from repro.analysis.sweep import SweepResult, sweep_parameter
from repro.core.backward_induction import BackwardInduction
from repro.core.collateral import CollateralBackwardInduction
from repro.core.feasible_range import feasible_pstar_range
from repro.core.parameters import SwapParameters
from repro.core.timeline import idealized_timeline
from repro.stochastic.rootfind import IntervalUnion

__all__ = [
    "figure2_timeline",
    "figure3_alice_t3",
    "figure4_bob_t2",
    "figure5_alice_t1",
    "figure6_success_rate",
    "figure7_bob_t2_collateral",
    "figure8_t1_collateral",
    "figure9_sr_collateral",
]

DEFAULT_PSTARS = (1.5, 2.0, 2.5)
DEFAULT_QS = (0.0, 0.2, 0.5, 1.0)


# --------------------------------------------------------------------- #
# Figure 2: the swap timeline
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class TimelineFigure:
    """Figure 2(b): the idealized event schedule."""

    events: Tuple[Tuple[str, float], ...]

    def render(self) -> str:
        rows = [[name, when] for name, when in self.events]
        return format_table(
            headers=["event", "time (hours)"],
            rows=rows,
            title="Figure 2(b): idealized timeline (zero waiting time)",
            float_fmt="{:.2f}",
        )


def figure2_timeline(params: Optional[SwapParameters] = None) -> TimelineFigure:
    """The Eq. (13) schedule under the given parameters."""
    if params is None:
        params = SwapParameters.default()
    tl = idealized_timeline(params)
    events = (
        ("t0 = t1 (agree + Alice locks)", tl.t1),
        ("t2 (Bob locks)", tl.t2),
        ("t3 (Alice reveals)", tl.t3),
        ("t4 (Bob redeems)", tl.t4),
        ("t5 = t_b (Alice receives)", tl.t5),
        ("t6 = t_a (Bob receives)", tl.t6),
        ("t7 (Bob refunded on fail)", tl.t7),
        ("t8 (Alice refunded on fail)", tl.t8),
    )
    return TimelineFigure(events=events)


# --------------------------------------------------------------------- #
# Figure 3: Alice's utility at t3
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class AliceT3Figure:
    """Figure 3 series: one (cont, stop, threshold) triple per ``P*``."""

    p3_grid: Tuple[float, ...]
    curves: Tuple[Tuple[float, Tuple[float, ...], float, float], ...]
    # each curve: (pstar, cont_values, stop_value, threshold)

    def render(self) -> str:
        series: Dict[str, Tuple[Sequence[float], Sequence[float]]] = {}
        for pstar, cont, stop, _thr in self.curves:
            series[f"cont P*={pstar}"] = (self.p3_grid, cont)
            series[f"stop P*={pstar}"] = (
                self.p3_grid,
                [stop] * len(self.p3_grid),
            )
        chart = ascii_chart(
            series,
            title="Figure 3: Alice's utility at t3",
            x_label="P_t3",
            y_label="U^A_t3",
        )
        rows = [[pstar, thr] for pstar, _c, _s, thr in self.curves]
        table = format_table(
            ["P*", "threshold P̲_t3 (Eq. 18)"], rows, title="thresholds"
        )
        return chart + "\n" + table


def figure3_alice_t3(
    params: Optional[SwapParameters] = None,
    pstars: Sequence[float] = DEFAULT_PSTARS,
    n_points: int = 41,
    p3_max: float = 4.0,
) -> AliceT3Figure:
    """Alice's Eq. (14)/(16) utilities across ``P_{t3}`` and ``P*``."""
    if params is None:
        params = SwapParameters.default()
    grid = tuple(float(x) for x in np.linspace(0.05, p3_max, n_points))
    curves = []
    for pstar in pstars:
        solver = BackwardInduction(params, pstar)
        cont = tuple(float(solver.alice_t3_cont(x)) for x in grid)
        curves.append((float(pstar), cont, solver.alice_t3_stop(), solver.p3_threshold()))
    return AliceT3Figure(p3_grid=grid, curves=tuple(curves))


# --------------------------------------------------------------------- #
# Figure 4: Bob's utility at t2
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class BobT2Figure:
    """Figure 4 series: Bob's cont/stop utilities and feasible range per ``P*``."""

    p2_grid: Tuple[float, ...]
    curves: Tuple[
        Tuple[float, Tuple[float, ...], Optional[Tuple[float, float]]], ...
    ]
    # each curve: (pstar, cont_values, feasible_range)

    def render(self) -> str:
        series: Dict[str, Tuple[Sequence[float], Sequence[float]]] = {
            "stop (= P_t2)": (self.p2_grid, self.p2_grid)
        }
        for pstar, cont, _rng in self.curves:
            series[f"cont P*={pstar}"] = (self.p2_grid, cont)
        chart = ascii_chart(
            series,
            title="Figure 4: Bob's utility at t2",
            x_label="P_t2",
            y_label="U^B_t2",
        )
        rows = [
            [pstar, rng[0] if rng else float("nan"), rng[1] if rng else float("nan")]
            for pstar, _c, rng in self.curves
        ]
        table = format_table(
            ["P*", "P̲_t2", "P̄_t2"], rows, title="feasible ranges (Eq. 24)"
        )
        return chart + "\n" + table


def figure4_bob_t2(
    params: Optional[SwapParameters] = None,
    pstars: Sequence[float] = DEFAULT_PSTARS,
    n_points: int = 41,
    p2_max: float = 4.0,
) -> BobT2Figure:
    """Bob's Eq. (21)/(23) utilities across ``P_{t2}`` and ``P*``."""
    if params is None:
        params = SwapParameters.default()
    grid = tuple(float(x) for x in np.linspace(0.05, p2_max, n_points))
    curves = []
    for pstar in pstars:
        solver = BackwardInduction(params, pstar)
        cont = tuple(float(v) for v in solver.bob_t2_cont(np.asarray(grid)))
        region = solver.bob_t2_region()
        bounds = None if region.is_empty else region.bounds()
        curves.append((float(pstar), cont, bounds))
    return BobT2Figure(p2_grid=grid, curves=tuple(curves))


# --------------------------------------------------------------------- #
# Figure 5: Alice's utility at t1
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class AliceT1Figure:
    """Figure 5 series: Alice's t1 cont/stop utilities vs ``P*``."""

    pstar_grid: Tuple[float, ...]
    cont_values: Tuple[float, ...]
    stop_values: Tuple[float, ...]
    feasible_range: Optional[Tuple[float, float]]

    def render(self) -> str:
        chart = ascii_chart(
            {
                "cont": (self.pstar_grid, self.cont_values),
                "stop (= P*)": (self.pstar_grid, self.stop_values),
            },
            title="Figure 5: Alice's utility at t1",
            x_label="P*",
            y_label="U^A_t1",
        )
        if self.feasible_range:
            lo, hi = self.feasible_range
            chart += f"\nfeasible P* range (Eq. 29): ({lo:.4f}, {hi:.4f})"
        else:
            chart += "\nno feasible P* range"
        return chart


def figure5_alice_t1(
    params: Optional[SwapParameters] = None,
    pstar_min: float = 1.0,
    pstar_max: float = 3.2,
    n_points: int = 23,
    service: "Optional[SwapService]" = None,
) -> AliceT1Figure:
    """Alice's Eq. (25)/(27) utilities across ``P*`` (served/cached)."""
    from repro.service.api import default_service

    if params is None:
        params = SwapParameters.default()
    grid = tuple(float(x) for x in np.linspace(pstar_min, pstar_max, n_points))
    svc = service if service is not None else default_service()
    cont = tuple(
        item.unwrap().alice_t1.cont for item in svc.sweep(grid, params=params)
    )
    return AliceT1Figure(
        pstar_grid=grid,
        cont_values=cont,
        stop_values=grid,
        feasible_range=feasible_pstar_range(params),
    )


# --------------------------------------------------------------------- #
# Figure 6: SR(P*) parameter sweeps
# --------------------------------------------------------------------- #

FIGURE6_SWEEPS: Dict[str, Tuple[float, ...]] = {
    "alpha_a": (0.1, 0.3, 0.6),
    "alpha_b": (0.1, 0.3, 0.6),
    "r_a": (0.005, 0.01, 0.03),
    "r_b": (0.005, 0.01, 0.03),
    "tau_a": (1.0, 3.0, 6.0),
    "tau_b": (2.0, 4.0, 8.0),
    "mu": (-0.01, 0.002, 0.01),
    "sigma": (0.05, 0.1, 0.15, 0.2),
}


@dataclass(frozen=True)
class SuccessRateFigure:
    """Figure 6: one sweep panel per parameter."""

    panels: Tuple[SweepResult, ...]

    def panel(self, parameter: str) -> SweepResult:
        """The sweep for one parameter."""
        for sweep in self.panels:
            if sweep.parameter == parameter:
                return sweep
        raise KeyError(f"no panel for {parameter!r}")

    def render(self) -> str:
        blocks: List[str] = []
        for sweep in self.panels:
            series: Dict[str, Tuple[Sequence[float], Sequence[float]]] = {}
            for curve in sweep.curves:
                label = f"{sweep.parameter}={curve.value:g}"
                if not curve.viable:
                    label += " (non-viable)"
                    continue
                series[label] = (curve.pstars, curve.rates)
            if series:
                blocks.append(
                    ascii_chart(
                        series,
                        title=f"Figure 6 panel: SR(P*) vs {sweep.parameter}",
                        x_label="P*",
                        y_label="SR",
                        height=14,
                    )
                )
            non_viable = [c.value for c in sweep.curves if not c.viable]
            if non_viable:
                blocks.append(
                    f"  non-viable {sweep.parameter} values (no feasible P*): "
                    + ", ".join(f"{v:g}" for v in non_viable)
                )
        return "\n\n".join(blocks)


def figure6_success_rate(
    params: Optional[SwapParameters] = None,
    sweeps: Optional[Dict[str, Tuple[float, ...]]] = None,
    n_points: int = 21,
) -> SuccessRateFigure:
    """All Figure 6 panels: ``SR(P*)`` as each parameter varies."""
    if params is None:
        params = SwapParameters.default()
    if sweeps is None:
        sweeps = FIGURE6_SWEEPS
    panels = tuple(
        sweep_parameter(params, name, values, n_points=n_points, locate_max=False)
        for name, values in sweeps.items()
    )
    return SuccessRateFigure(panels=panels)


# --------------------------------------------------------------------- #
# Figure 7: Bob's t2 utility with collateral
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class BobT2CollateralFigure:
    """Figure 7: Bob's collateralised cont utility and indifference points."""

    p2_grid: Tuple[float, ...]
    curves: Tuple[Tuple[float, float, Tuple[float, ...], IntervalUnion], ...]
    # each curve: (pstar, collateral, cont_values, continuation_region)

    def render(self) -> str:
        series: Dict[str, Tuple[Sequence[float], Sequence[float]]] = {
            "stop (= P_t2)": (self.p2_grid, self.p2_grid)
        }
        for pstar, q, cont, _region in self.curves:
            series[f"cont P*={pstar} Q={q}"] = (self.p2_grid, cont)
        chart = ascii_chart(
            series,
            title="Figure 7: Bob's utility at t2 with collateral",
            x_label="P_t2",
            y_label="U^B_t2,c",
        )
        rows = []
        for pstar, q, _cont, region in self.curves:
            pieces = "; ".join(f"({lo:.3f}, {hi:.3f})" for lo, hi in region.intervals)
            rows.append([pstar, q, len(region), pieces or "empty"])
        table = format_table(
            ["P*", "Q", "pieces", "continuation region 𝔓_t2"],
            rows,
            title="indifference structure (1 or 3 roots)",
        )
        return chart + "\n" + table


def figure7_bob_t2_collateral(
    params: Optional[SwapParameters] = None,
    settings: Sequence[Tuple[float, float]] = ((2.0, 0.2), (2.0, 0.5), (2.5, 0.2)),
    n_points: int = 41,
    p2_max: float = 4.0,
) -> BobT2CollateralFigure:
    """Bob's Eq. (35) cont utility for several ``(P*, Q)`` pairs."""
    if params is None:
        params = SwapParameters.default()
    grid = tuple(float(x) for x in np.linspace(0.02, p2_max, n_points))
    curves = []
    for pstar, q in settings:
        solver = CollateralBackwardInduction(params, pstar, q)
        cont = tuple(float(v) for v in solver.bob_t2_cont(np.asarray(grid)))
        curves.append((float(pstar), float(q), cont, solver.bob_t2_region()))
    return BobT2CollateralFigure(p2_grid=grid, curves=tuple(curves))


# --------------------------------------------------------------------- #
# Figure 8: t1 utilities with collateral
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class T1CollateralFigure:
    """Figure 8: both agents' t1 cont/stop utilities vs ``P*``."""

    collateral: float
    pstar_grid: Tuple[float, ...]
    alice_cont: Tuple[float, ...]
    alice_stop: Tuple[float, ...]
    bob_cont: Tuple[float, ...]
    bob_stop: Tuple[float, ...]
    alice_region: IntervalUnion
    bob_region: IntervalUnion

    def render(self) -> str:
        chart = ascii_chart(
            {
                "A cont": (self.pstar_grid, self.alice_cont),
                "A stop": (self.pstar_grid, self.alice_stop),
                "B cont": (self.pstar_grid, self.bob_cont),
                "B stop": (self.pstar_grid, self.bob_stop),
            },
            title=f"Figure 8: t1 utilities with collateral Q={self.collateral}",
            x_label="P*",
            y_label="U_t1,c",
        )

        def show(region: IntervalUnion) -> str:
            if region.is_empty:
                return "empty"
            return "; ".join(f"({lo:.3f}, {hi:.3f})" for lo, hi in region.intervals)

        joint = self.alice_region.intersect(self.bob_region)
        union = self.alice_region.union(self.bob_region)
        return (
            chart
            + f"\nAlice-feasible P*: {show(self.alice_region)}"
            + f"\nBob-feasible   P*: {show(self.bob_region)}"
            + f"\nintersection (ours): {show(joint)}"
            + f"\nunion (paper's literal 𝔓*): {show(union)}"
        )


def figure8_t1_collateral(
    params: Optional[SwapParameters] = None,
    collateral: float = 0.5,
    pstar_min: float = 1.0,
    pstar_max: float = 3.2,
    n_points: int = 19,
    service: "Optional[SwapService]" = None,
) -> T1CollateralFigure:
    """Eq. (36)-(39) series for both agents (served/cached)."""
    from repro.core.collateral import feasible_pstar_region_with_collateral
    from repro.service.api import default_service

    if params is None:
        params = SwapParameters.default()
    grid = tuple(float(x) for x in np.linspace(pstar_min, pstar_max, n_points))
    svc = service if service is not None else default_service()
    alice_cont, bob_cont = [], []
    for item in svc.sweep(grid, params=params, collateral=collateral):
        eq = item.unwrap()
        alice_cont.append(eq.alice_t1.cont)
        bob_cont.append(eq.bob_t1.cont)
    alice_region, bob_region = feasible_pstar_region_with_collateral(
        params, collateral
    )
    return T1CollateralFigure(
        collateral=float(collateral),
        pstar_grid=grid,
        alice_cont=tuple(alice_cont),
        alice_stop=tuple(k + collateral for k in grid),
        bob_cont=tuple(bob_cont),
        bob_stop=tuple(params.p0 + collateral for _ in grid),
        alice_region=alice_region,
        bob_region=bob_region,
    )


# --------------------------------------------------------------------- #
# Figure 9: SR(P*) for different collateral levels
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class SRCollateralFigure:
    """Figure 9: one ``SR(P*)`` curve per collateral ``Q``."""

    pstar_grid: Tuple[float, ...]
    curves: Tuple[Tuple[float, Tuple[float, ...]], ...]  # (Q, rates)

    def render(self) -> str:
        series = {
            f"Q={q:g}": (self.pstar_grid, rates) for q, rates in self.curves
        }
        return ascii_chart(
            series,
            title="Figure 9: SR(P*) with collateral",
            x_label="P*",
            y_label="SR",
        )

    def max_rates(self) -> List[Tuple[float, float]]:
        """Peak SR per collateral level (should increase with Q)."""
        return [(q, max(rates)) for q, rates in self.curves]


def figure9_sr_collateral(
    params: Optional[SwapParameters] = None,
    collaterals: Sequence[float] = DEFAULT_QS,
    pstar_min: float = 1.55,
    pstar_max: float = 2.5,
    n_points: int = 21,
    service: "Optional[SwapService]" = None,
) -> SRCollateralFigure:
    """Eq. (40) success-rate curves per deposit level (served/cached)."""
    from repro.service.api import default_service

    if params is None:
        params = SwapParameters.default()
    grid = tuple(float(x) for x in np.linspace(pstar_min, pstar_max, n_points))
    svc = service if service is not None else default_service()
    curves = []
    for q in collaterals:
        rates = tuple(svc.success_rates(grid, params=params, collateral=q))
        curves.append((float(q), rates))
    return SRCollateralFigure(pstar_grid=grid, curves=tuple(curves))
