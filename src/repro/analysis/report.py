"""Plain-text rendering for tables and curves.

Every experiment artifact in this repository prints to a terminal:
:func:`format_table` renders aligned ASCII tables,
:func:`ascii_chart` renders one-or-more ``(x, y)`` series as a compact
character plot (enough to eyeball concavity, crossings and ordering --
the properties the paper's figures communicate).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["format_table", "ascii_chart"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    float_fmt: str = "{:.4f}",
) -> str:
    """Render rows as an aligned ASCII table."""

    def cell(value: object) -> str:
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, text in enumerate(row):
            widths[i] = max(widths[i], len(text))

    def hline() -> str:
        return "+" + "+".join("-" * (w + 2) for w in widths) + "+"

    def render_row(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(hline())
    lines.append(render_row(headers))
    lines.append(hline())
    for row in str_rows:
        lines.append(render_row(row))
    lines.append(hline())
    return "\n".join(lines)


_MARKERS = "*o+x#@%&"


def ascii_chart(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 72,
    height: int = 20,
    title: Optional[str] = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render labelled ``(xs, ys)`` series on a character canvas.

    NaN points are skipped (used for infeasible segments, matching the
    paper's convention of only plotting viable parameter values).
    """
    points: List[Tuple[float, float, str]] = []
    legend: List[Tuple[str, str]] = []
    for idx, (label, (xs, ys)) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        legend.append((marker, label))
        for x, y in zip(xs, ys):
            if math.isnan(x) or math.isnan(y):
                continue
            points.append((float(x), float(y), marker))
    if not points:
        return (title + "\n" if title else "") + "(no finite data)"

    x_min = min(p[0] for p in points)
    x_max = max(p[0] for p in points)
    y_min = min(p[1] for p in points)
    y_max = max(p[1] for p in points)
    x_span = x_max - x_min or 1.0
    y_span = y_max - y_min or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for x, y, marker in points:
        col = int((x - x_min) / x_span * (width - 1))
        row = height - 1 - int((y - y_min) / y_span * (height - 1))
        canvas[row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} in [{y_min:.4g}, {y_max:.4g}]")
    for row in canvas:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f"{x_label} in [{x_min:.4g}, {x_max:.4g}]")
    lines.append("legend: " + "  ".join(f"{m} {label}" for m, label in legend))
    return "\n".join(lines)
