"""The paper's tables.

* Table I -- agents' expected balance change by swap; regenerated from
  an actual protocol run's balance audit, not hard-coded.
* Table III -- default parameter values, read from
  :meth:`SwapParameters.default`.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.agents.honest import HonestAgent
from repro.analysis.report import format_table
from repro.core.parameters import SwapParameters
from repro.protocol.swap import SwapProtocol
from repro.stochastic.rng import RandomState

__all__ = ["table1_balance_change", "table3_default_parameters"]


def table1_balance_change(
    params: SwapParameters = None, pstar: float = 2.0
) -> Tuple[List[List[object]], str]:
    """Table I, measured from a successful protocol run.

    Runs one honest-agent swap on the chain substrate and reads the
    balance deltas off the ledgers. Returns ``(rows, rendered)`` where
    rows are ``[agent, delta_chain_a, delta_chain_b]``.
    """
    if params is None:
        params = SwapParameters.default()
    protocol = SwapProtocol(
        params, pstar, HonestAgent("alice"), HonestAgent("bob"), rng=RandomState(0)
    )
    record = protocol.run([params.p0] * 3)
    if not record.outcome.succeeded:
        raise RuntimeError(f"honest swap unexpectedly failed: {record.outcome}")
    rows: List[List[object]] = [
        [
            "Alice (A)",
            record.balance_change("alice", "TOKEN_A"),
            record.balance_change("alice", "TOKEN_B"),
        ],
        [
            "Bob (B)",
            record.balance_change("bob", "TOKEN_A"),
            record.balance_change("bob", "TOKEN_B"),
        ],
    ]
    rendered = format_table(
        headers=["Agent", "on Chain_a (Token_a)", "on Chain_b (Token_b)"],
        rows=rows,
        title=f"Table I: expected balance change by swap (P* = {pstar})",
        float_fmt="{:+.4f}",
    )
    return rows, rendered


def table3_default_parameters() -> Tuple[List[List[object]], str]:
    """Table III: default parameter values with units."""
    params = SwapParameters.default()
    units = {
        "alpha_a": "",
        "alpha_b": "",
        "r_a": "/hour",
        "r_b": "/hour",
        "tau_a": "hours",
        "tau_b": "hours",
        "eps_b": "hours",
        "p0": "Token_a",
        "mu": "/hour",
        "sigma": "/sqrt(hour)",
    }
    rows: List[List[object]] = [
        [name, value, units[name]] for name, value in params.as_dict().items()
    ]
    rendered = format_table(
        headers=["parameter", "value", "unit"],
        rows=rows,
        title="Table III: default value of parameters",
    )
    return rows, rendered
