"""The service layer: batched, cached, parallel solve-and-validate.

This package turns the paper's one-shot solvers into a serveable
engine. The pieces, bottom-up:

* :mod:`repro.service.requests` -- :class:`SolveRequest` /
  :class:`ValidateRequest` / :class:`SwapGraphRequest`, the three
  request kinds, with exact dict round-trips;
* :mod:`repro.service.keys` -- canonical versioned request hashing
  and per-request seed derivation;
* :mod:`repro.service.serialize` -- JSON codecs for the result
  objects (bit-exact float round-trip);
* :mod:`repro.service.cache` -- in-memory LRU over an optional
  on-disk JSON store, with hit/miss/eviction counters;
* :mod:`repro.service.executor` -- process-pool execution with
  per-request timeouts and deterministic seeding;
* :mod:`repro.service.sources` -- the pluggable answer-source
  chain (``surface -> cache -> engine -> scalar``) behind sweeps;
* :mod:`repro.service.api` -- :class:`SwapService`, the batch facade
  the CLI (``repro-swaps batch``) and the analysis sweeps consume;
* :mod:`repro.service.jsonl` -- the JSON-lines batch wire format
  shared by the CLI and the HTTP server (:mod:`repro.server`).

Quickstart::

    from repro.service import SwapService, SolveRequest

    service = SwapService(max_workers=4, cache_dir="cache")
    items = service.sweep([1.8, 2.0, 2.2])
    for item in items:
        print(item.unwrap().success_rate)
"""

from repro.service.api import BatchItem, SwapService, default_service
from repro.service.cache import CacheStats, DiskCache, LRUCache, TieredCache
from repro.service.errors import (
    RequestTimeoutError,
    RequestValidationError,
    ServiceError,
    ServiceErrorInfo,
    SolveFailedError,
    WorkerCrashedError,
    error_payload,
)
from repro.service.executor import ValidationResult, WorkerPool, execute_request
from repro.service.jsonl import render_records, serve_lines
from repro.service.keys import KEY_VERSION, derive_seed, request_key
from repro.service.requests import (
    SolveRequest,
    SwapGraphRequest,
    ValidateRequest,
    parse_request,
)
from repro.service.sources import (
    AnswerSource,
    CacheSource,
    EngineSource,
    ScalarSource,
    SourceChain,
    SurfaceSource,
)
from repro.service.serialize import decode_result, encode_result

__all__ = [
    "BatchItem",
    "SwapService",
    "SwapGraphRequest",
    "default_service",
    "CacheStats",
    "LRUCache",
    "DiskCache",
    "TieredCache",
    "ServiceError",
    "ServiceErrorInfo",
    "RequestValidationError",
    "SolveFailedError",
    "RequestTimeoutError",
    "WorkerCrashedError",
    "error_payload",
    "ValidationResult",
    "WorkerPool",
    "execute_request",
    "KEY_VERSION",
    "request_key",
    "derive_seed",
    "AnswerSource",
    "SourceChain",
    "SurfaceSource",
    "CacheSource",
    "EngineSource",
    "ScalarSource",
    "SolveRequest",
    "ValidateRequest",
    "parse_request",
    "encode_result",
    "decode_result",
    "serve_lines",
    "render_records",
]
