"""The pluggable answer-source chain behind ``SwapService.sweep``.

A sweep shares one ``(params, collateral)`` across its whole ``P*``
grid, which makes its answer path a clean ladder of explicit
:class:`AnswerSource` objects, cheapest first::

    surface  -- certified interpolation off a precomputed artifact
                (microseconds; only when the caller granted a
                tolerance and the point is on-surface within bound)
    cache    -- exact results from the two-tier cache
    engine   -- one vectorised grid-engine pass for every remaining
                point (exact; results are cached)
    scalar   -- per-point backward induction through the worker pool
                (exact; the last rung never refuses)

Each source consumes the slots it can answer and passes the remainder
down. Every tier *transition* is observable: a sweep that consulted
the surface but had to fall through counts
``repro_degraded_total{path="surface_to_engine"}``, and an engine
failure counts ``repro_degraded_total{path="engine_to_scalar"}`` (the
rung-two ladder of the chaos suite, unchanged). Surface hits land in
the ``repro_surface_*`` families via the surface itself.

The chain is deliberately dumb plumbing: sources own *how* to answer,
the chain owns only ordering and transition accounting, and
``SwapService`` owns request canonicalisation and item assembly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence, Union

from repro.core.parameters import SwapParameters
from repro.obs.logging import get_logger
from repro.obs.metrics import get_registry
from repro.obs.tracing import span
from repro.service.errors import ServiceError
from repro.service.executor import Result

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.cache import TieredCache
    from repro.service.executor import WorkerPool
    from repro.service.requests import SolveRequest
    from repro.surface.interpolate import Surface

__all__ = [
    "AnswerSource",
    "SurfaceSource",
    "CacheSource",
    "EngineSource",
    "ScalarSource",
    "SourceChain",
    "SweepContext",
    "Slot",
]


def _degraded_counter():
    return get_registry().counter(
        "repro_degraded_total",
        help="Times the stack fell back to a degraded path.",
        labelnames=("path",),
    )


@dataclass
class Slot:
    """One unique request travelling down the chain."""

    key: str
    request: "SolveRequest"
    outcome: Optional[Union[Result, ServiceError]] = None
    source: Optional[str] = None


@dataclass
class SweepContext:
    """Shared state of one sweep's trip through the chain.

    ``tolerance`` is the sweep-level error grant, already resolved
    against the service-wide default. Approximation is opt-in: with no
    grant (``None``) or an explicit demand for exactness (``0.0``) the
    surface rung is skipped without counting a transition.
    """

    params: SwapParameters
    collateral: float = 0.0
    tolerance: Optional[float] = None
    surface_consulted: bool = field(default=False, init=False)


class AnswerSource:
    """One rung of the ladder.

    ``answer`` fills ``outcome``/``source`` on the slots it can serve
    and returns the rest, in order, for the next rung. Implementations
    must never raise for a single bad point -- refusal is returning
    the slot."""

    name = "source"

    def answer(
        self, slots: Sequence[Slot], ctx: SweepContext
    ) -> List[Slot]:
        raise NotImplementedError


class SurfaceSource(AnswerSource):
    """Certified interpolation off a loaded surface artifact."""

    name = "surface"

    def __init__(self, surface: "Surface") -> None:
        self.surface = surface

    def answer(self, slots, ctx):
        if ctx.tolerance is None or ctx.tolerance <= 0.0:
            return list(slots)  # no error grant; not consulted
        ctx.surface_consulted = True
        with span("batch.surface_lookup"):
            lookup = self.surface.lookup(
                ctx.params,
                [slot.request.pstar for slot in slots],
                collateral=ctx.collateral,
                tolerance=ctx.tolerance,
            )
        leftover: List[Slot] = []
        for i, slot in enumerate(slots):
            answer = lookup.answer_at(i)
            if answer is None:
                leftover.append(slot)
            else:
                slot.outcome = answer
                slot.source = self.name
        return leftover


class CacheSource(AnswerSource):
    """Exact results from the two-tier cache."""

    name = "cache"

    def __init__(self, cache: "TieredCache") -> None:
        self.cache = cache

    def answer(self, slots, ctx):
        leftover: List[Slot] = []
        with span("batch.cache_lookup"):
            for slot in slots:
                hit = self.cache.get(slot.key)
                if hit is None:
                    leftover.append(slot)
                else:
                    slot.outcome = hit
                    slot.source = self.name
        return leftover


class EngineSource(AnswerSource):
    """One vectorised grid-engine pass over every remaining point.

    On engine failure the source logs, counts
    ``repro_degraded_total{path="engine_to_scalar"}`` once, and passes
    *all* its slots down -- the scalar rung answers them exactly.
    """

    name = "engine"

    def __init__(self, cache: "TieredCache", injector) -> None:
        self.cache = cache
        self.injector = injector

    def answer(self, slots, ctx):
        from repro.core.engine import solve_grid

        try:
            with span("batch.execute"):
                if self.injector.enabled and self.injector.fires(
                    "engine_error", f"sweep:{len(slots)}"
                ):
                    raise RuntimeError("injected engine_error")
                grid = solve_grid(
                    ctx.params,
                    [slot.request.pstar for slot in slots],
                    collateral=ctx.collateral,
                )
        except Exception as exc:
            _degraded_counter().inc(path="engine_to_scalar")
            get_logger().log(
                "sweep_degraded",
                path="engine_to_scalar",
                error=f"{exc.__class__.__name__}: {exc}",
                points=len(slots),
            )
            return list(slots)
        for i, slot in enumerate(slots):
            equilibrium = grid.equilibrium_at(i)
            slot.outcome = equilibrium
            slot.source = self.name
            self.cache.put(slot.key, equilibrium)
        return []


class ScalarSource(AnswerSource):
    """Per-point backward induction through the worker pool.

    The last rung: answers everything, with a value or a typed error
    per slot. Successful solves are cached like any exact result.
    """

    name = "scalar"

    def __init__(self, pool: "WorkerPool", cache: "TieredCache") -> None:
        self.pool = pool
        self.cache = cache

    def answer(self, slots, ctx):
        with span("batch.execute"):
            outcomes = self.pool.map(
                [(slot.request, None) for slot in slots]
            )
        for slot, outcome in zip(slots, outcomes):
            slot.outcome = outcome
            slot.source = self.name
            if not isinstance(outcome, ServiceError):
                self.cache.put(slot.key, outcome)
        return []


class SourceChain:
    """Orders the rungs and accounts for surface fall-through."""

    def __init__(self, sources: Sequence[AnswerSource]) -> None:
        self.sources = list(sources)

    @staticmethod
    def build(
        cache: "TieredCache",
        pool: "WorkerPool",
        injector,
        surface: Optional["Surface"] = None,
    ) -> "SourceChain":
        """The standard ladder; the surface rung only when loaded."""
        sources: List[AnswerSource] = []
        if surface is not None:
            sources.append(SurfaceSource(surface))
        sources.extend(
            [
                CacheSource(cache),
                EngineSource(cache, injector),
                ScalarSource(pool, cache),
            ]
        )
        return SourceChain(sources)

    def run(self, slots: Sequence[Slot], ctx: SweepContext) -> None:
        """Send ``slots`` down the ladder until every one is answered."""
        pending: List[Slot] = list(slots)
        for source in self.sources:
            if not pending:
                break
            pending = source.answer(pending, ctx)
        if ctx.surface_consulted:
            fell_through = sum(
                1 for slot in slots if slot.source not in (None, "surface")
            )
            if fell_through:
                _degraded_counter().inc(path="surface_to_engine")
                get_logger().log(
                    "surface_fell_through",
                    path="surface_to_engine",
                    points=fell_through,
                )
