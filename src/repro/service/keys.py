"""Canonical, versioned cache keys for service requests.

A key is the SHA-256 of the request's canonical JSON payload -- the
``to_dict`` form serialised with sorted keys and no whitespace --
prefixed with a schema version. Python's ``json`` emits the shortest
round-trip ``repr`` for floats, so two requests produce the same key
iff every field is bit-for-bit equal; ``alpha=0.3`` and
``alpha=0.30000000000000004`` are different games and get different
keys.

Bump :data:`KEY_VERSION` whenever the payload schema *or the semantics
of the computation behind it* changes (new solver defaults, different
quadrature order, ...): stale on-disk cache entries from older
versions then miss instead of serving wrong answers.

The key doubles as the root of per-request RNG seeding:
:func:`derive_seed` folds it through
:func:`repro.stochastic.rng.stable_seed`, giving every validation
request a reproducible stream no matter which worker process runs it.
"""

from __future__ import annotations

import hashlib
import json

from repro.service.requests import Request
from repro.stochastic.rng import stable_seed

__all__ = ["KEY_VERSION", "canonical_payload", "request_key", "derive_seed"]

# v2: sweep-shaped solves route through the vectorised grid engine
# (repro.core.engine), whose root refinement is batched bisection rather
# than per-bracket Brent -- agreement with v1 entries is ~1e-12, not
# bit-for-bit, so old entries must miss.
# v3: the surface tier participates in answers -- SolveRequest grew a
# ``tolerance`` field (part of the canonical payload) and tolerant
# requests may be answered by certified interpolation, so v2 entries
# keyed on the old schema must miss.
# v4: the ``swap_graph`` request kind joined the schema (its spec and
# replay knobs are part of the canonical payload), and seed derivation
# now covers swap-graph replays; keys from the three-kind schema must
# miss rather than alias the new request space.
# v5: pluggable price laws -- ``params``/``spec`` payloads may carry a
# ``law`` object ({"kind", "params"}), absent for the default lognormal
# law (so lognormal payloads are byte-identical to v4's), and solver
# results now depend on the law; pre-law cache entries must miss.
KEY_VERSION = 5


def canonical_payload(request: Request) -> str:
    """The canonical JSON string hashed into the key."""
    return json.dumps(request.to_dict(), sort_keys=True, separators=(",", ":"))


def request_key(request: Request) -> str:
    """The stable cache key, e.g. ``v2-9f2a...`` (64 hex digits)."""
    digest = hashlib.sha256(canonical_payload(request).encode("utf-8")).hexdigest()
    return f"v{KEY_VERSION}-{digest}"


def derive_seed(key: str) -> int:
    """The deterministic RNG seed for a request with no explicit seed."""
    return stable_seed("repro.service", KEY_VERSION, key)
