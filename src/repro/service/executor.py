"""Request execution: serial, or fanned out over a process pool.

:func:`execute_request` is the single worker entry point -- a
top-level, picklable function that turns one request into one result
object. :class:`WorkerPool` maps it over a batch:

* ``max_workers <= 1`` degrades gracefully to a plain serial loop in
  the calling process (no pickling, no fork) -- the reference
  execution;
* ``max_workers > 1`` uses a :class:`~concurrent.futures.ProcessPoolExecutor`
  with a per-request timeout. A timeout fails *that request* with a
  typed error; the rest of the batch completes.

Self-healing: a worker crash breaks the whole
:class:`~concurrent.futures.ProcessPoolExecutor` -- every
not-yet-returned future in the batch raises ``BrokenExecutor``, not
just the request that killed the worker. Instead of cascading that
one crash into a batch-wide failure, :meth:`WorkerPool.map` **rebuilds
the pool and requeues the surviving requests**, each with a bounded
retry budget (``max_requeues``); only a request that keeps breaking
the pool surfaces :class:`WorkerCrashedError` (retryable). Rebuilds
are counted in ``repro_pool_rebuilds_total`` and
``repro_degraded_total{path="pool_rebuild"}``.

Determinism: a validation request's RNG seed is resolved *before*
dispatch -- the explicit ``seed`` if given, else
:func:`repro.service.keys.derive_seed` of the request key -- so the
parallel execution draws exactly the paths the serial one does,
regardless of worker scheduling.

Chaos hooks: an optional :class:`~repro.faults.injector.FaultInjector`
can kill the worker mid-request (``worker_crash`` -- a *real*
``os._exit`` in pooled mode, so the healing above is exercised against
the genuine ``BrokenExecutor``, not a simulation) or stall it
(``worker_hang``). Decisions are drawn in the dispatching process
against the request's canonical payload, so a chaos run replays
exactly regardless of worker scheduling.

Observability: every mapped job lands in the active registry --
``repro_pool_tasks_total{outcome=ok|error|timeout|crashed}``,
``repro_pool_task_seconds`` (in-worker execution time, reported back
through :func:`_timed_execute`), ``repro_pool_queue_seconds`` (dispatch
wall-clock minus execution time: pickling + waiting for a free worker),
and the ``repro_pool_workers`` / ``repro_pool_inflight`` gauges.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.backward_induction import BackwardInduction
from repro.core.collateral import (
    CollateralBackwardInduction,
    CollateralEquilibrium,
    solve_collateral_game,
)
from repro.core.equilibrium import SwapEquilibrium
from repro.core.solver import solve_swap_game
from repro.faults.injector import build_injector
from repro.obs.metrics import get_registry
from repro.service.errors import (
    RequestTimeoutError,
    ServiceError,
    SolveFailedError,
    WorkerCrashedError,
)
from repro.service.requests import (
    Request,
    SolveRequest,
    SwapGraphRequest,
    ValidateRequest,
)
from repro.simulation.montecarlo import MonteCarloResult, empirical_success_rate
from repro.swapgraph.replay import replay_swap_graph
from repro.swapgraph.result import SwapGraphResult
from repro.swapgraph.solver import solve_swap_graph

__all__ = ["ValidationResult", "Result", "execute_request", "WorkerPool"]


@dataclass(frozen=True)
class ValidationResult:
    """One Monte Carlo validation: empirical vs analytic success rate."""

    empirical: MonteCarloResult
    analytic: float
    seed_used: int

    @property
    def passed(self) -> bool:
        """Whether the analytic rate lies inside the empirical 95% CI."""
        return self.empirical.contains(self.analytic)


Result = Union[
    SwapEquilibrium, CollateralEquilibrium, ValidationResult, SwapGraphResult
]


def execute_request(request: Request, seed: Optional[int] = None) -> Result:
    """Run one request to completion in the current process.

    ``seed`` is the pre-resolved RNG seed for validation requests
    (ignored for solves). Solver/model errors are re-raised as
    :class:`SolveFailedError` so the batch layer can report them
    per-request.
    """
    try:
        if isinstance(request, SolveRequest):
            if request.collateral > 0.0:
                return solve_collateral_game(
                    request.params, request.pstar, request.collateral
                )
            return solve_swap_game(request.params, request.pstar)
        if isinstance(request, ValidateRequest):
            if seed is None:
                seed = request.seed if request.seed is not None else 0
            if request.collateral > 0.0:
                analytic = CollateralBackwardInduction(
                    request.params, request.pstar, request.collateral
                ).success_rate()
            else:
                analytic = BackwardInduction(
                    request.params, request.pstar
                ).success_rate()
            empirical = empirical_success_rate(
                request.params,
                request.pstar,
                n_paths=request.n_paths,
                seed=seed,
                collateral=request.collateral,
                protocol_level=request.protocol_level,
            )
            return ValidationResult(
                empirical=empirical, analytic=analytic, seed_used=seed
            )
        if isinstance(request, SwapGraphRequest):
            equilibrium = solve_swap_graph(
                request.spec, n_lattice=request.n_lattice
            )
            replay = None
            if request.replay:
                if seed is None:
                    seed = request.seed if request.seed is not None else 0
                replay = replay_swap_graph(
                    equilibrium, n_paths=request.replay_paths, seed=seed
                )
            return SwapGraphResult(equilibrium=equilibrium, replay=replay)
    except ServiceError:
        raise
    except Exception as exc:  # solver/model failure, not a service bug
        raise SolveFailedError(f"{exc.__class__.__name__}: {exc}") from exc
    raise SolveFailedError(f"unsupported request type {type(request).__name__}")


def _timed_execute(
    request: Request,
    seed: Optional[int],
    fault: Optional[Tuple[str, float]] = None,
) -> Tuple[Union[Result, ServiceError], float]:
    """Pool entry point: ``(outcome, in-worker seconds)``.

    Catching the :class:`ServiceError` here (instead of letting it
    propagate through the future) keeps the execution time attached, so
    the parent can split dispatch wall-clock into queue vs work even
    for failed requests.

    ``fault`` is an injected adversity decided by the *dispatching*
    process (see :class:`WorkerPool`): ``("crash", _)`` kills this
    worker outright -- the parent observes a genuine broken pool --
    and ``("hang", delay)`` stalls before executing, so the parent's
    per-request timeout fires when ``delay`` exceeds it.
    """
    if fault is not None:
        kind, delay = fault
        if kind == "crash":
            os._exit(13)  # no cleanup: a real SIGKILL-style worker death
        time.sleep(delay)
    started = time.perf_counter()
    try:
        outcome: Union[Result, ServiceError] = execute_request(request, seed)
    except ServiceError as exc:
        outcome = exc
    return outcome, time.perf_counter() - started


class _PoolMetrics:
    """The worker pool's registry instruments, bound once."""

    def __init__(self) -> None:
        registry = get_registry()
        self.tasks = registry.counter(
            "repro_pool_tasks_total",
            help="Jobs mapped over the pool, by outcome.",
            labelnames=("outcome",),
        )
        self.task_seconds = registry.histogram(
            "repro_pool_task_seconds",
            help="In-worker execution time of one job.",
        )
        self.queue_seconds = registry.histogram(
            "repro_pool_queue_seconds",
            help="Dispatch wall-clock minus in-worker time (pickling + wait).",
        )
        self.workers = registry.gauge(
            "repro_pool_workers",
            help="Configured pool size (1 = serial in-process).",
        )
        self.inflight = registry.gauge(
            "repro_pool_inflight",
            help="Jobs currently being mapped.",
        )
        self.rebuilds = registry.counter(
            "repro_pool_rebuilds_total",
            help="Process pools rebuilt after a worker crash broke them.",
        )
        self.degraded = registry.counter(
            "repro_degraded_total",
            help="Times the stack fell back to a degraded path.",
            labelnames=("path",),
        )

    def record(self, outcome: str, task_s: float, queue_s: float) -> None:
        self.tasks.inc(outcome=outcome)
        self.task_seconds.observe(task_s)
        if queue_s > 0.0:
            self.queue_seconds.observe(queue_s)


def _outcome_label(outcome: Union[Result, ServiceError]) -> str:
    if isinstance(outcome, RequestTimeoutError):
        return "timeout"
    if isinstance(outcome, WorkerCrashedError):
        return "crashed"
    if isinstance(outcome, ServiceError):
        return "error"
    return "ok"


class WorkerPool:
    """Map :func:`execute_request` over jobs, serially or in processes.

    Parameters
    ----------
    max_workers:
        ``<= 1`` runs in-process (the deterministic reference path);
        larger values fork a :class:`ProcessPoolExecutor` of that size.
    timeout:
        Per-request wall-clock budget in seconds (``None``: no limit).
        Only enforced in pooled mode; a timed-out request yields a
        :class:`RequestTimeoutError`, its worker is abandoned and the
        pool keeps serving the remaining futures.
    faults:
        Optional chaos hook (``None``, an
        :class:`~repro.faults.plan.InjectionPlan`, or an injector);
        honours ``worker_crash`` and ``worker_hang`` specs.
    max_requeues:
        Retry budget per request after a pool break: how many times one
        request may be requeued onto a rebuilt pool before it surfaces
        :class:`WorkerCrashedError`.
    """

    def __init__(
        self,
        max_workers: int = 1,
        timeout: Optional[float] = None,
        faults=None,
        max_requeues: int = 2,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if max_requeues < 0:
            raise ValueError(f"max_requeues must be >= 0, got {max_requeues}")
        self.max_workers = int(max_workers)
        self.timeout = timeout
        self.max_requeues = int(max_requeues)
        self.injector = build_injector(faults)
        self._metrics = _PoolMetrics()
        self._metrics.workers.set(self.max_workers)

    def map(
        self, jobs: Sequence[Tuple[Request, Optional[int]]]
    ) -> List[Union[Result, ServiceError]]:
        """Execute ``(request, seed)`` jobs, preserving order.

        Returns one entry per job: the result object on success, or the
        typed :class:`ServiceError` describing the failure. Never
        raises for a per-request failure, and -- because broken pools
        are rebuilt and their pending jobs requeued -- one crashed
        worker never fails the rest of its batch.
        """
        self._metrics.inflight.inc(len(jobs))
        try:
            if self.max_workers <= 1 or len(jobs) <= 1:
                return [self._run_serial(request, seed) for request, seed in jobs]
            return self._run_pooled(jobs)
        finally:
            self._metrics.inflight.dec(len(jobs))

    def _job_fault(self, request: Request) -> Optional[Tuple[str, float]]:
        """The injected fault marker shipped with one dispatched job.

        Decided here, in the dispatching process, against the request's
        canonical payload -- worker processes carry no injector state,
        so the decision sequence replays deterministically.
        """
        if not self.injector.enabled:
            return None
        from repro.service.keys import canonical_payload

        key = canonical_payload(request)
        if self.injector.fires("worker_crash", key):
            return ("crash", 0.0)
        delay = self.injector.delay_for("worker_hang", key)
        if delay is not None:
            return ("hang", delay)
        return None

    def _run_pooled(
        self, jobs: Sequence[Tuple[Request, Optional[int]]]
    ) -> List[Union[Result, ServiceError]]:
        out: List[Union[Result, ServiceError]] = [None] * len(jobs)  # type: ignore[list-item]
        attempts: Dict[int, int] = {}
        pending = list(range(len(jobs)))
        pool = ProcessPoolExecutor(max_workers=self.max_workers)
        timed_out = False
        try:
            while pending:
                submitted = time.perf_counter()
                futures = {
                    index: pool.submit(
                        _timed_execute, *jobs[index], self._job_fault(jobs[index][0])
                    )
                    for index in pending
                }
                requeue: List[int] = []
                broken = False
                for index, future in futures.items():
                    try:
                        outcome, task_s = future.result(timeout=self.timeout)
                        out[index] = outcome
                        wall = time.perf_counter() - submitted
                        self._metrics.record(
                            _outcome_label(outcome), task_s, wall - task_s
                        )
                    except FutureTimeoutError:
                        future.cancel()
                        timed_out = True
                        out[index] = RequestTimeoutError(
                            f"request exceeded {self.timeout:g}s"
                        )
                        self._metrics.record("timeout", float(self.timeout), 0.0)
                    except BrokenExecutor as exc:
                        # the pool is dead for *every* pending future;
                        # requeue survivors onto a rebuilt pool instead
                        # of cascading one crash into batch-wide failure
                        broken = True
                        attempts[index] = attempts.get(index, 0) + 1
                        if attempts[index] <= self.max_requeues:
                            requeue.append(index)
                        else:
                            detail = str(exc) or "worker pool broke"
                            out[index] = WorkerCrashedError(
                                f"request kept breaking the pool "
                                f"({attempts[index]} attempts): {detail}"
                            )
                            self._metrics.tasks.inc(outcome="crashed")
                    except Exception as exc:  # unpicklable result, BrokenPipe, ...
                        out[index] = WorkerCrashedError(
                            f"{exc.__class__.__name__}: {exc}"
                        )
                        self._metrics.tasks.inc(outcome="crashed")
                pending = requeue
                if broken:
                    pool.shutdown(wait=False, cancel_futures=True)
                    if pending:
                        pool = ProcessPoolExecutor(max_workers=self.max_workers)
                    self._metrics.rebuilds.inc()
                    self._metrics.degraded.inc(path="pool_rebuild")
        finally:
            # after a timeout, don't block shutdown on the abandoned
            # worker; it is orphaned and reaped at interpreter exit
            pool.shutdown(wait=not timed_out, cancel_futures=timed_out)
        return out

    def _run_serial(
        self, request: Request, seed: Optional[int]
    ) -> Union[Result, ServiceError]:
        fault = self._job_fault(request)
        if fault is not None and fault[0] == "crash":
            # in-process execution cannot survive a real crash; surface
            # the same typed, retryable error a pooled crash would
            outcome: Union[Result, ServiceError] = WorkerCrashedError(
                "injected worker_crash (serial mode)"
            )
            self._metrics.record(_outcome_label(outcome), 0.0, 0.0)
            return outcome
        outcome, task_s = _timed_execute(request, seed, fault)
        self._metrics.record(_outcome_label(outcome), task_s, 0.0)
        return outcome
