"""Typed errors of the service layer.

Every failure a batch can observe maps to one exception class with a
stable ``code`` string. The batch API never lets one bad request kill
the rest: exceptions are caught per request and surfaced as structured
``{"code", "message"}`` payloads (see :func:`error_payload`), which is
also the wire format the ``repro-swaps batch`` command emits.
"""

from __future__ import annotations

from typing import Dict

__all__ = [
    "ServiceError",
    "RequestValidationError",
    "SolveFailedError",
    "RequestTimeoutError",
    "WorkerCrashedError",
    "error_payload",
]


class ServiceError(Exception):
    """Base class; ``code`` identifies the failure kind on the wire."""

    code = "service_error"


class RequestValidationError(ServiceError):
    """The request was well-formed JSON but semantically invalid."""

    code = "invalid_request"


class SolveFailedError(ServiceError):
    """The solver raised while executing an accepted request."""

    code = "solve_failed"


class RequestTimeoutError(ServiceError):
    """The request exceeded the executor's per-request timeout."""

    code = "timeout"


class WorkerCrashedError(ServiceError):
    """A pool worker died (OOM, signal) before returning a result."""

    code = "worker_crashed"


def error_payload(exc: BaseException) -> Dict[str, str]:
    """The structured ``{"code", "message"}`` form of any exception."""
    code = exc.code if isinstance(exc, ServiceError) else "internal_error"
    return {"code": code, "message": str(exc) or exc.__class__.__name__}
