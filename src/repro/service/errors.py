"""Typed errors of the service layer.

Every failure a batch can observe maps to one exception class with a
stable ``code`` string. The batch API never lets one bad request kill
the rest: exceptions are caught per request and surfaced as frozen
:class:`ServiceErrorInfo` records (``code``, ``message``,
``retryable``). On the wire -- the ``repro-swaps batch`` output -- an
error still serialises to the historical ``{"code", "message"}`` dict,
so existing consumers parse new output unchanged; ``retryable`` is an
in-process hint (timeouts and worker crashes are safe to resubmit,
validation and solver failures are deterministic and are not).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = [
    "ServiceError",
    "RequestValidationError",
    "SolveFailedError",
    "RequestTimeoutError",
    "WorkerCrashedError",
    "ServiceErrorInfo",
    "error_payload",
]


class ServiceError(Exception):
    """Base class; ``code`` identifies the failure kind on the wire."""

    code = "service_error"
    retryable = False


class RequestValidationError(ServiceError):
    """The request was well-formed JSON but semantically invalid."""

    code = "invalid_request"


class SolveFailedError(ServiceError):
    """The solver raised while executing an accepted request."""

    code = "solve_failed"


class RequestTimeoutError(ServiceError):
    """The request exceeded the executor's per-request timeout."""

    code = "timeout"
    retryable = True


class WorkerCrashedError(ServiceError):
    """A pool worker died (OOM, signal) before returning a result."""

    code = "worker_crashed"
    retryable = True


@dataclass(frozen=True)
class ServiceErrorInfo:
    """Structured description of one failed request.

    The typed counterpart of the old ``{"code", "message"}`` payload
    dict: ``code`` is the stable machine-readable kind, ``message`` the
    human detail, ``retryable`` whether resubmitting the identical
    request can succeed (transient infrastructure failures) or is
    pointless (deterministic rejections).
    """

    code: str
    message: str
    retryable: bool = False

    @staticmethod
    def from_exception(exc: BaseException) -> "ServiceErrorInfo":
        """Classify any exception into an error record."""
        if isinstance(exc, ServiceError):
            return ServiceErrorInfo(
                code=exc.code,
                message=str(exc) or exc.__class__.__name__,
                retryable=exc.retryable,
            )
        return ServiceErrorInfo(
            code="internal_error",
            message=str(exc) or exc.__class__.__name__,
            retryable=False,
        )

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "ServiceErrorInfo":
        """Rebuild from a wire dict (inverse of :meth:`to_dict`)."""
        return ServiceErrorInfo(
            code=str(data["code"]),
            message=str(data["message"]),
            retryable=bool(data.get("retryable", False)),
        )

    def to_dict(self) -> Dict[str, str]:
        """The wire form -- exactly the historical two-key payload."""
        return {"code": self.code, "message": self.message}

    def raise_(self) -> None:
        """Re-raise as a :class:`ServiceError` (``BatchItem.unwrap``)."""
        raise ServiceError(f"{self.code}: {self.message}")


def error_payload(exc: BaseException) -> Dict[str, str]:
    """The ``{"code", "message"}`` wire dict of any exception.

    Thin shim over :meth:`ServiceErrorInfo.from_exception` kept for the
    pre-existing callers; new code should use the dataclass directly.
    """
    return ServiceErrorInfo.from_exception(exc).to_dict()
