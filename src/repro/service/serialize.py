"""JSON codecs for service results.

The disk cache and the ``repro-swaps batch`` wire format both need
result objects as plain JSON. Floats survive exactly: Python's
``json`` writes shortest round-trip reprs, so
``decode_result(json.loads(json.dumps(encode_result(x))))``
reproduces every threshold bit-for-bit (property-tested).

Strategies are *derived* state -- ``AliceStrategy``/``BobStrategy``
are rebuilt from the stored thresholds and regions exactly the way
the solvers build them, rather than serialised redundantly.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.collateral import CollateralEquilibrium
from repro.core.equilibrium import StageUtilities, SwapEquilibrium
from repro.core.parameters import SwapParameters
from repro.core.strategy import AliceStrategy, BobStrategy
from repro.service.executor import Result, ValidationResult
from repro.simulation.montecarlo import MonteCarloResult
from repro.stochastic.rootfind import IntervalUnion
from repro.swapgraph.result import SwapGraphResult

__all__ = ["encode_result", "decode_result"]


def _encode_region(region: IntervalUnion) -> List[List[float]]:
    return [[lo, hi] for lo, hi in region.intervals]


def _decode_region(data: List[List[float]]) -> IntervalUnion:
    return IntervalUnion(tuple((float(lo), float(hi)) for lo, hi in data))


def _encode_stage(stage: StageUtilities) -> Dict[str, float]:
    return {"cont": stage.cont, "stop": stage.stop}


def _decode_stage(data: Dict[str, float]) -> StageUtilities:
    return StageUtilities(cont=float(data["cont"]), stop=float(data["stop"]))


def encode_result(result: Result) -> Dict[str, object]:
    """Encode any service result into a tagged JSON-safe dict."""
    # imported lazily: repro.surface depends on this module (via the
    # cache), so a top-level import would be circular
    from repro.surface.interpolate import SurfaceAnswer

    if isinstance(result, SurfaceAnswer):
        return {
            "kind": "surface_answer",
            "pstar": result.pstar,
            "collateral": result.collateral,
            "success_rate": result.success_rate,
            "bound": result.bound,
        }
    if isinstance(result, CollateralEquilibrium):
        return {
            "kind": "collateral_equilibrium",
            "params": result.params.to_dict(),
            "pstar": result.pstar,
            "collateral": result.collateral,
            "p3_threshold": result.p3_threshold,
            "bob_t2_region": _encode_region(result.bob_t2_region),
            "alice_t1": _encode_stage(result.alice_t1),
            "bob_t1": _encode_stage(result.bob_t1),
            "success_rate": result.success_rate,
            "alice_engages": result.alice_engages,
            "bob_engages": result.bob_engages,
        }
    if isinstance(result, SwapEquilibrium):
        return {
            "kind": "swap_equilibrium",
            "params": result.params.to_dict(),
            "pstar": result.pstar,
            "p3_threshold": result.p3_threshold,
            "bob_t2_region": _encode_region(result.bob_t2_region),
            "alice_t1": _encode_stage(result.alice_t1),
            "bob_t1": _encode_stage(result.bob_t1),
            "success_rate": result.success_rate,
            "initiated": result.initiated,
        }
    if isinstance(result, SwapGraphResult):
        payload = result.to_dict()
        payload["kind"] = "swap_graph_result"
        return payload
    if isinstance(result, ValidationResult):
        empirical = result.empirical
        return {
            "kind": "validation",
            "pstar": empirical.pstar,
            "collateral": empirical.collateral,
            "n_paths": empirical.n_paths,
            "n_initiated": empirical.n_initiated,
            "n_completed": empirical.n_completed,
            "success_rate": empirical.success_rate,
            "ci_low": empirical.ci_low,
            "ci_high": empirical.ci_high,
            "analytic": result.analytic,
            "seed_used": result.seed_used,
            "passed": result.passed,
        }
    raise TypeError(f"cannot encode result of type {type(result).__name__}")


def decode_result(data: Dict[str, object]) -> Result:
    """Rebuild the result object from its :func:`encode_result` form."""
    kind = data.get("kind")
    if kind == "surface_answer":
        from repro.surface.interpolate import SurfaceAnswer

        return SurfaceAnswer(
            pstar=float(data["pstar"]),  # type: ignore[arg-type]
            collateral=float(data["collateral"]),  # type: ignore[arg-type]
            success_rate=float(data["success_rate"]),  # type: ignore[arg-type]
            bound=float(data["bound"]),  # type: ignore[arg-type]
        )
    if kind == "swap_equilibrium":
        params = SwapParameters.from_dict(data["params"])  # type: ignore[arg-type]
        region = _decode_region(data["bob_t2_region"])  # type: ignore[arg-type]
        initiated = bool(data["initiated"])
        p3_threshold = float(data["p3_threshold"])
        return SwapEquilibrium(
            params=params,
            pstar=float(data["pstar"]),  # type: ignore[arg-type]
            p3_threshold=p3_threshold,
            bob_t2_region=region,
            alice_t1=_decode_stage(data["alice_t1"]),  # type: ignore[arg-type]
            bob_t1=_decode_stage(data["bob_t1"]),  # type: ignore[arg-type]
            success_rate=float(data["success_rate"]),  # type: ignore[arg-type]
            initiated=initiated,
            alice_strategy=AliceStrategy(
                initiate_at_t1=initiated, p3_threshold=p3_threshold
            ),
            bob_strategy=BobStrategy(t2_region=region),
        )
    if kind == "collateral_equilibrium":
        params = SwapParameters.from_dict(data["params"])  # type: ignore[arg-type]
        region = _decode_region(data["bob_t2_region"])  # type: ignore[arg-type]
        alice_engages = bool(data["alice_engages"])
        p3_threshold = float(data["p3_threshold"])
        return CollateralEquilibrium(
            params=params,
            pstar=float(data["pstar"]),  # type: ignore[arg-type]
            collateral=float(data["collateral"]),  # type: ignore[arg-type]
            p3_threshold=p3_threshold,
            bob_t2_region=region,
            alice_t1=_decode_stage(data["alice_t1"]),  # type: ignore[arg-type]
            bob_t1=_decode_stage(data["bob_t1"]),  # type: ignore[arg-type]
            success_rate=float(data["success_rate"]),  # type: ignore[arg-type]
            alice_engages=alice_engages,
            bob_engages=bool(data["bob_engages"]),
            alice_strategy=AliceStrategy(
                initiate_at_t1=alice_engages, p3_threshold=p3_threshold
            ),
            bob_strategy=BobStrategy(t2_region=region),
        )
    if kind == "swap_graph_result":
        return SwapGraphResult.from_dict(data)
    if kind == "validation":
        empirical = MonteCarloResult(
            pstar=float(data["pstar"]),  # type: ignore[arg-type]
            collateral=float(data["collateral"]),  # type: ignore[arg-type]
            n_paths=int(data["n_paths"]),  # type: ignore[arg-type]
            n_initiated=int(data["n_initiated"]),  # type: ignore[arg-type]
            n_completed=int(data["n_completed"]),  # type: ignore[arg-type]
            success_rate=float(data["success_rate"]),  # type: ignore[arg-type]
            ci_low=float(data["ci_low"]),  # type: ignore[arg-type]
            ci_high=float(data["ci_high"]),  # type: ignore[arg-type]
        )
        return ValidationResult(
            empirical=empirical,
            analytic=float(data["analytic"]),  # type: ignore[arg-type]
            seed_used=int(data["seed_used"]),  # type: ignore[arg-type]
        )
    raise ValueError(f"cannot decode result kind {kind!r}")
