"""The service facade: batched, cached, parallel solve-and-validate.

:class:`SwapService` is the serveable engine in front of the paper's
solvers. A batch of requests flows through three stages:

1. **canonicalise + dedupe** -- every request is hashed into its
   canonical key (:mod:`repro.service.keys`); duplicates within the
   batch are computed once;
2. **cache** -- keys are looked up in the two-tier cache
   (:mod:`repro.service.cache`); only misses proceed;
3. **execute** -- misses fan out over the worker pool
   (:mod:`repro.service.executor`), serially when ``max_workers=1``.

Results come back as :class:`BatchItem` records in request order: a
value *or* a typed error per request -- one bad request never kills
the batch. The figure sweeps of :mod:`repro.analysis` route through
:func:`default_service`, so repeated artifact generation is served
from cache.

:meth:`SwapService.sweep` is the exception to stage 3: a sweep routes
through the explicit answer-source chain
(:mod:`repro.service.sources`) -- ``surface -> cache -> engine ->
scalar`` -- so points covered by a precomputed surface artifact
(:mod:`repro.surface`) are answered by certified interpolation in
microseconds, exact cache hits next, and the cache misses are solved
in a single vectorised pass through the grid engine
(:mod:`repro.core.engine`) rather than one scalar solve per point.

Surface participation is always *opt-in by tolerance*: with no
tolerance granted anywhere (request, call, or service construction),
every answer is exact and bit-identical to the solver's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.core.parameters import SwapParameters
from repro.deprecation import warn_once
from repro.faults.injector import build_injector
from repro.obs.logging import get_logger
from repro.obs.metrics import get_registry
from repro.obs.tracing import span
from repro.service.cache import TieredCache
from repro.service.errors import (
    RequestValidationError,
    ServiceError,
    ServiceErrorInfo,
    SolveFailedError,
)
from repro.service.executor import Result, WorkerPool
from repro.service.keys import canonical_payload, derive_seed, request_key
from repro.service.requests import (
    Request,
    SolveRequest,
    SwapGraphRequest,
    ValidateRequest,
)
from repro.service.sources import Slot, SourceChain, SweepContext
from repro.swapgraph.metrics import observe_graph_request

__all__ = ["BatchItem", "SwapService", "default_service"]


@dataclass(frozen=True)
class BatchItem:
    """Outcome of one request within a batch.

    ``source`` names the answer tier that served the request
    (``"surface"``, ``"cache"``, ``"engine"``, or ``"scalar"``);
    ``cached`` stays the historical boolean (``source == "cache"``).
    """

    key: str
    ok: bool
    value: Optional[Result] = None
    error: Optional[ServiceErrorInfo] = None
    cached: bool = False
    source: Optional[str] = None

    def unwrap(self) -> Result:
        """The value, or a :class:`ServiceError` re-raised for callers
        that treat any failure as fatal (the analysis sweeps do)."""
        if self.error is not None:
            self.error.raise_()
        assert self.value is not None
        return self.value


class SwapService:
    """Batched, cached, parallel access to the swap-game solvers.

    Parameters
    ----------
    max_workers:
        Size of the process pool; ``1`` (default) executes serially
        in-process.
    cache_size:
        Capacity of the in-memory LRU tier.
    cache_dir:
        Optional directory for the persistent JSON tier; results then
        survive across service instances and processes.
    cache_entries:
        Bound on the disk tier's entry count (``None``: unbounded);
        oldest entries are pruned on write once the bound is exceeded.
    timeout:
        Per-request wall-clock budget in seconds (pooled mode only).
    faults:
        Optional chaos hook: ``None`` (default, no faults), a plan-file
        path, an :class:`~repro.faults.plan.InjectionPlan`, or a shared
        injector. Threaded into the cache, the worker pool, the sweep
        engine, and the surface loader so one plan drives the whole
        service.
    surface:
        Optional precomputed surface: a loaded
        :class:`~repro.surface.interpolate.Surface` or an artifact
        path. A missing path is a configuration error
        (``ValueError``); a corrupt or unreadable artifact is
        quarantined/logged and the service starts *without* the
        surface tier (counted in
        ``repro_degraded_total{path="surface_load"}``) -- the same
        heal-and-degrade discipline as the disk cache.
    tolerance:
        Service-wide default answer tolerance: when set, solve
        requests without their own ``tolerance`` may be answered by
        the surface within this absolute success-rate error. ``None``
        (default) keeps every tolerance-less request exact. (The
        pre-v1.2 spelling ``surface_tolerance=`` still works for one
        release behind a warn-once shim.)
    """

    def __init__(
        self,
        max_workers: int = 1,
        cache_size: int = 4096,
        cache_dir: Optional[str] = None,
        cache_entries: Optional[int] = None,
        timeout: Optional[float] = None,
        faults=None,
        surface=None,
        tolerance: Optional[float] = None,
        surface_tolerance: Optional[float] = None,
    ) -> None:
        if surface_tolerance is not None:
            warn_once(
                "SwapService.surface_tolerance",
                "SwapService(surface_tolerance=) is deprecated; "
                "pass tolerance= instead",
            )
            if tolerance is None:
                tolerance = surface_tolerance
        self.faults = build_injector(faults)
        self._cache = TieredCache.build(
            maxsize=cache_size,
            cache_dir=cache_dir,
            disk_entries=cache_entries,
            injector=self.faults,
        )
        self._pool = WorkerPool(
            max_workers=max_workers, timeout=timeout, faults=self.faults
        )
        if tolerance is not None:
            tolerance = float(tolerance)
            if not (math.isfinite(tolerance) and tolerance >= 0.0):
                raise ValueError(
                    f"tolerance must be finite and >= 0, got {tolerance}"
                )
        self._tolerance = tolerance
        self.surface = (
            self._load_surface(surface) if surface is not None else None
        )
        self._chain = SourceChain.build(
            cache=self._cache,
            pool=self._pool,
            injector=self.faults,
            surface=self.surface,
        )

    def _load_surface(self, surface):
        """Resolve the ``surface`` argument into a loaded Surface.

        Degrades (returns ``None``) on a rotten artifact; raises
        ``ValueError`` only for the plain misconfiguration of a path
        that does not exist.
        """
        # imported lazily: repro.surface imports this package
        from repro.surface.artifact import SurfaceError, load_surface
        from repro.surface.interpolate import Surface

        if isinstance(surface, Surface):
            return surface
        try:
            return load_surface(surface, injector=self.faults)
        except FileNotFoundError:
            raise ValueError(f"surface artifact not found: {surface}")
        except (SurfaceError, OSError) as exc:
            get_registry().counter(
                "repro_degraded_total",
                help="Times the stack fell back to a degraded path.",
                labelnames=("path",),
            ).inc(path="surface_load")
            get_logger().log(
                "surface_load_failed",
                path=str(surface),
                error=f"{exc.__class__.__name__}: {exc}",
            )
            return None

    # ------------------------------------------------------------------ #
    # batch entry points
    # ------------------------------------------------------------------ #

    def run_batch(self, requests: Sequence[Request]) -> List[BatchItem]:
        """Execute a (possibly mixed solve/validate) batch.

        Identical requests are deduped onto one computation, cache hits
        are served without touching the pool, and failures come back as
        per-item typed errors in request order.
        """
        registry = get_registry()
        registry.counter(
            "repro_batches_total", help="Batches served by SwapService."
        ).inc()
        registry.counter(
            "repro_batch_requests_total",
            help="Requests received across all batches.",
        ).inc(len(requests))

        with span("batch.canonicalise"):
            keys = [request_key(request) for request in requests]

        jobs: List[tuple] = []  # (key, request, seed)
        scheduled = set()
        resolved: Dict[str, Union[Result, ServiceError]] = {}
        from_cache = set()
        from_surface = set()

        # surface pre-pass: tolerance-granted solves may be answered by
        # certified interpolation before touching cache or pool
        surface_consulted = False
        if self.surface is not None:
            with span("batch.surface_lookup"):
                for key, request in zip(keys, requests):
                    if key in resolved or not isinstance(request, SolveRequest):
                        continue
                    tolerance = (
                        request.tolerance
                        if request.tolerance is not None
                        else self._tolerance
                    )
                    if tolerance is None or tolerance <= 0.0:
                        continue  # exactness demanded; not consulted
                    surface_consulted = True
                    answer = self.surface.answer(
                        request.params,
                        request.pstar,
                        collateral=request.collateral,
                        tolerance=tolerance,
                    )
                    if answer is not None:
                        resolved[key] = answer
                        from_surface.add(key)

        with span("batch.cache_lookup"):
            for key, request in zip(keys, requests):
                if key in scheduled or key in resolved:
                    continue
                hit = self._cache.get(key)
                if hit is not None:
                    resolved[key] = hit
                    from_cache.add(key)
                    continue
                seed = None
                if isinstance(request, (ValidateRequest, SwapGraphRequest)):
                    seed = (
                        request.seed
                        if request.seed is not None
                        else derive_seed(key)
                    )
                if isinstance(request, SwapGraphRequest) and self.faults.enabled:
                    # chaos hooks for the swap-graph path, decided here
                    # in the dispatching process (like worker faults)
                    # against the request's canonical payload
                    payload = canonical_payload(request)
                    if self.faults.fires("swapgraph_error", payload):
                        resolved[key] = SolveFailedError(
                            "injected swapgraph_error"
                        )
                        continue
                    self.faults.sleep("swapgraph_slow", payload)
                jobs.append((key, request, seed))
                scheduled.add(key)
        registry.counter(
            "repro_batch_deduped_total",
            help="Requests collapsed onto an identical in-batch computation.",
        ).inc(
            len(requests) - len(scheduled) - len(from_cache) - len(from_surface)
        )
        if surface_consulted and (from_cache or jobs):
            # the chain's transition accounting, batch-shaped: the
            # surface was consulted but some answers came from below
            registry.counter(
                "repro_degraded_total",
                help="Times the stack fell back to a degraded path.",
                labelnames=("path",),
            ).inc(path="surface_to_engine")

        if jobs:
            with span("batch.execute"):
                outcomes = self._pool.map(
                    [(request, seed) for _, request, seed in jobs]
                )
            for (key, _request, _seed), outcome in zip(jobs, outcomes):
                resolved[key] = outcome
                if not isinstance(outcome, ServiceError):
                    self._cache.put(key, outcome)

        items: List[BatchItem] = []
        for key, request in zip(keys, requests):
            outcome = resolved[key]
            if isinstance(outcome, ServiceError):
                item = BatchItem(
                    key=key,
                    ok=False,
                    error=ServiceErrorInfo.from_exception(outcome),
                    source="scalar",
                )
            else:
                item = BatchItem(
                    key=key,
                    ok=True,
                    value=outcome,
                    cached=key in from_cache,
                    source=(
                        "surface"
                        if key in from_surface
                        else "cache" if key in from_cache else "scalar"
                    ),
                )
            if isinstance(request, SwapGraphRequest):
                # counted here, in the serving process: solver-side
                # metrics from pool workers never reach the exporter
                observe_graph_request(item.source or "scalar")
            items.append(item)
        return items

    def solve_batch(self, requests: Sequence[SolveRequest]) -> List[BatchItem]:
        """Solve many games; see :meth:`run_batch` for semantics."""
        self._require_kind(requests, SolveRequest)
        return self.run_batch(requests)

    def validate_batch(self, requests: Sequence[ValidateRequest]) -> List[BatchItem]:
        """Monte-Carlo-validate many points; see :meth:`run_batch`."""
        self._require_kind(requests, ValidateRequest)
        return self.run_batch(requests)

    def sweep(
        self,
        pstars: Sequence[float],
        params: Optional[SwapParameters] = None,
        collateral: float = 0.0,
        tolerance: Optional[float] = None,
    ) -> List[BatchItem]:
        """Solve one game per exchange rate (the figure-sweep shape).

        A sweep shares one set of parameters across every ``P*``, so
        it routes down the answer-source chain
        (:mod:`repro.service.sources`): points the loaded surface can
        certify within ``tolerance`` are interpolated in microseconds,
        exact cache hits come next, and the remainder is solved in a
        *single* vectorised pass through the grid engine
        (:func:`repro.core.engine.solve_grid`) -- with the per-point
        scalar path as the last rung if the engine raises. Semantics
        match :meth:`run_batch`: per-point cache keys and per-point
        :class:`BatchItem` records in request order.

        ``tolerance=None`` uses the service-wide ``tolerance`` default;
        when neither grants an error budget -- or ``tolerance=0.0``
        demands exactness outright -- the surface rung is skipped and
        every answer is exact.
        """
        if params is None:
            params = SwapParameters.default()
        requests = [
            SolveRequest(pstar=float(pstar), collateral=collateral, params=params)
            for pstar in pstars
        ]

        registry = get_registry()
        registry.counter(
            "repro_batches_total", help="Batches served by SwapService."
        ).inc()
        registry.counter(
            "repro_batch_requests_total",
            help="Requests received across all batches.",
        ).inc(len(requests))

        with span("batch.canonicalise"):
            keys = [request_key(request) for request in requests]

        slots: Dict[str, Slot] = {}
        for key, request in zip(keys, requests):
            if key not in slots:
                slots[key] = Slot(key=key, request=request)
        registry.counter(
            "repro_batch_deduped_total",
            help="Requests collapsed onto an identical in-batch computation.",
        ).inc(len(requests) - len(slots))

        context = SweepContext(
            params=params,
            collateral=collateral,
            tolerance=(
                tolerance if tolerance is not None else self._tolerance
            ),
        )
        self._chain.run(list(slots.values()), context)

        items: List[BatchItem] = []
        for key in keys:
            slot = slots[key]
            if isinstance(slot.outcome, ServiceError):
                items.append(
                    BatchItem(
                        key=key,
                        ok=False,
                        error=ServiceErrorInfo.from_exception(slot.outcome),
                        source=slot.source,
                    )
                )
            else:
                items.append(
                    BatchItem(
                        key=key,
                        ok=True,
                        value=slot.outcome,
                        cached=slot.source == "cache",
                        source=slot.source,
                    )
                )
        return items

    # ------------------------------------------------------------------ #
    # conveniences
    # ------------------------------------------------------------------ #

    def solve(
        self,
        params: Optional[SwapParameters] = None,
        pstar: float = 2.0,
        collateral: float = 0.0,
    ) -> Result:
        """Solve a single game through the cache (raises on failure)."""
        if params is None:
            params = SwapParameters.default()
        request = SolveRequest(pstar=pstar, collateral=collateral, params=params)
        return self.run_batch([request])[0].unwrap()

    def swap_graph(
        self,
        spec,
        n_lattice: Optional[int] = None,
        replay: bool = False,
        replay_paths: int = 400,
        seed: Optional[int] = None,
    ) -> Result:
        """Solve one swap graph through the cache (raises on failure)."""
        request = SwapGraphRequest(
            spec=spec,
            n_lattice=n_lattice,
            replay=replay,
            replay_paths=replay_paths,
            seed=seed,
        )
        return self.run_batch([request])[0].unwrap()

    def success_rate(
        self,
        pstar: float,
        params: Optional[SwapParameters] = None,
        collateral: float = 0.0,
        tolerance: Optional[float] = None,
    ) -> float:
        """Eq. (31)/(40) rate at one ``P*``, through the full chain.

        With a tolerance granted this is the microsecond warm path: a
        surface hit returns the interpolated rate without touching the
        solvers."""
        items = self.sweep(
            [pstar], params=params, collateral=collateral, tolerance=tolerance
        )
        return items[0].unwrap().success_rate

    def success_rates(
        self,
        pstars: Sequence[float],
        params: Optional[SwapParameters] = None,
        collateral: float = 0.0,
        tolerance: Optional[float] = None,
    ) -> List[float]:
        """Eq. (31)/(40) rates on a ``P*`` grid (raises on any failure)."""
        return [
            item.unwrap().success_rate
            for item in self.sweep(
                pstars,
                params=params,
                collateral=collateral,
                tolerance=tolerance,
            )
        ]

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Counter snapshot per answer tier (cache tiers + surface)."""
        out = self._cache.stats()
        if self.surface is not None:
            out["surface"] = self.surface.stats.as_dict()
        return out

    def surface_info(self) -> Optional[Dict[str, object]]:
        """The loaded surface's description (version, axes, checksum),
        or ``None`` when no surface tier is active."""
        return None if self.surface is None else self.surface.info()

    @staticmethod
    def _require_kind(requests: Sequence[Request], kind: type) -> None:
        for request in requests:
            if not isinstance(request, kind):
                raise RequestValidationError(
                    f"expected {kind.__name__}, got {type(request).__name__}"
                )


_default: Optional[SwapService] = None


def default_service() -> SwapService:
    """The process-wide shared service (serial, memory-cache only).

    Used by the analysis layer so that figure and sweep regeneration
    reuse each other's solves within one process. Serving deployments
    construct their own :class:`SwapService` with workers and a disk
    cache.
    """
    global _default
    if _default is None:
        _default = SwapService(max_workers=1)
    return _default
