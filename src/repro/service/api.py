"""The service facade: batched, cached, parallel solve-and-validate.

:class:`SwapService` is the serveable engine in front of the paper's
solvers. A batch of requests flows through three stages:

1. **canonicalise + dedupe** -- every request is hashed into its
   canonical key (:mod:`repro.service.keys`); duplicates within the
   batch are computed once;
2. **cache** -- keys are looked up in the two-tier cache
   (:mod:`repro.service.cache`); only misses proceed;
3. **execute** -- misses fan out over the worker pool
   (:mod:`repro.service.executor`), serially when ``max_workers=1``.

Results come back as :class:`BatchItem` records in request order: a
value *or* a typed error per request -- one bad request never kills
the batch. The figure sweeps of :mod:`repro.analysis` route through
:func:`default_service`, so repeated artifact generation is served
from cache.

:meth:`SwapService.sweep` is the exception to stage 3: a sweep shares
one parameter set across its whole ``P*`` grid, so its cache misses are
solved in a single vectorised pass through the grid engine
(:mod:`repro.core.engine`) rather than one scalar solve per point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.core.parameters import SwapParameters
from repro.faults.injector import build_injector
from repro.obs.logging import get_logger
from repro.obs.metrics import get_registry
from repro.obs.tracing import span
from repro.service.cache import TieredCache
from repro.service.errors import (
    RequestValidationError,
    ServiceError,
    ServiceErrorInfo,
)
from repro.service.executor import Result, WorkerPool
from repro.service.keys import derive_seed, request_key
from repro.service.requests import Request, SolveRequest, ValidateRequest

__all__ = ["BatchItem", "SwapService", "default_service"]


@dataclass(frozen=True)
class BatchItem:
    """Outcome of one request within a batch."""

    key: str
    ok: bool
    value: Optional[Result] = None
    error: Optional[ServiceErrorInfo] = None
    cached: bool = False

    def unwrap(self) -> Result:
        """The value, or a :class:`ServiceError` re-raised for callers
        that treat any failure as fatal (the analysis sweeps do)."""
        if self.error is not None:
            self.error.raise_()
        assert self.value is not None
        return self.value


class SwapService:
    """Batched, cached, parallel access to the swap-game solvers.

    Parameters
    ----------
    max_workers:
        Size of the process pool; ``1`` (default) executes serially
        in-process.
    cache_size:
        Capacity of the in-memory LRU tier.
    cache_dir:
        Optional directory for the persistent JSON tier; results then
        survive across service instances and processes.
    cache_entries:
        Bound on the disk tier's entry count (``None``: unbounded);
        oldest entries are pruned on write once the bound is exceeded.
    timeout:
        Per-request wall-clock budget in seconds (pooled mode only).
    faults:
        Optional chaos hook: ``None`` (default, no faults), a plan-file
        path, an :class:`~repro.faults.plan.InjectionPlan`, or a shared
        injector. Threaded into the cache, the worker pool, and the
        sweep engine so one plan drives the whole service.
    """

    def __init__(
        self,
        max_workers: int = 1,
        cache_size: int = 4096,
        cache_dir: Optional[str] = None,
        cache_entries: Optional[int] = None,
        timeout: Optional[float] = None,
        faults=None,
    ) -> None:
        self.faults = build_injector(faults)
        self._cache = TieredCache.build(
            maxsize=cache_size,
            cache_dir=cache_dir,
            disk_entries=cache_entries,
            injector=self.faults,
        )
        self._pool = WorkerPool(
            max_workers=max_workers, timeout=timeout, faults=self.faults
        )

    # ------------------------------------------------------------------ #
    # batch entry points
    # ------------------------------------------------------------------ #

    def run_batch(self, requests: Sequence[Request]) -> List[BatchItem]:
        """Execute a (possibly mixed solve/validate) batch.

        Identical requests are deduped onto one computation, cache hits
        are served without touching the pool, and failures come back as
        per-item typed errors in request order.
        """
        registry = get_registry()
        registry.counter(
            "repro_batches_total", help="Batches served by SwapService."
        ).inc()
        registry.counter(
            "repro_batch_requests_total",
            help="Requests received across all batches.",
        ).inc(len(requests))

        with span("batch.canonicalise"):
            keys = [request_key(request) for request in requests]

        jobs: List[tuple] = []  # (key, request, seed)
        scheduled = set()
        resolved: Dict[str, Union[Result, ServiceError]] = {}
        from_cache = set()
        with span("batch.cache_lookup"):
            for key, request in zip(keys, requests):
                if key in scheduled or key in resolved:
                    continue
                hit = self._cache.get(key)
                if hit is not None:
                    resolved[key] = hit
                    from_cache.add(key)
                    continue
                seed = None
                if isinstance(request, ValidateRequest):
                    seed = (
                        request.seed
                        if request.seed is not None
                        else derive_seed(key)
                    )
                jobs.append((key, request, seed))
                scheduled.add(key)
        registry.counter(
            "repro_batch_deduped_total",
            help="Requests collapsed onto an identical in-batch computation.",
        ).inc(len(requests) - len(scheduled) - len(from_cache))

        if jobs:
            with span("batch.execute"):
                outcomes = self._pool.map(
                    [(request, seed) for _, request, seed in jobs]
                )
            for (key, _request, _seed), outcome in zip(jobs, outcomes):
                resolved[key] = outcome
                if not isinstance(outcome, ServiceError):
                    self._cache.put(key, outcome)

        items: List[BatchItem] = []
        for key in keys:
            outcome = resolved[key]
            if isinstance(outcome, ServiceError):
                items.append(
                    BatchItem(
                        key=key,
                        ok=False,
                        error=ServiceErrorInfo.from_exception(outcome),
                    )
                )
            else:
                items.append(
                    BatchItem(
                        key=key, ok=True, value=outcome, cached=key in from_cache
                    )
                )
        return items

    def solve_batch(self, requests: Sequence[SolveRequest]) -> List[BatchItem]:
        """Solve many games; see :meth:`run_batch` for semantics."""
        self._require_kind(requests, SolveRequest)
        return self.run_batch(requests)

    def validate_batch(self, requests: Sequence[ValidateRequest]) -> List[BatchItem]:
        """Monte-Carlo-validate many points; see :meth:`run_batch`."""
        self._require_kind(requests, ValidateRequest)
        return self.run_batch(requests)

    def sweep(
        self,
        pstars: Sequence[float],
        params: Optional[SwapParameters] = None,
        collateral: float = 0.0,
    ) -> List[BatchItem]:
        """Solve one game per exchange rate (the figure-sweep shape).

        A sweep shares one set of parameters across every ``P*``, so the
        cache misses are solved in a *single* vectorised pass through the
        grid engine (:func:`repro.core.engine.solve_grid`) instead of one
        scalar backward induction per point. Semantics match
        :meth:`run_batch` exactly: per-point cache keys, per-point
        :class:`BatchItem` records in request order, and the per-point
        scalar path as fallback if the engine raises.
        """
        if params is None:
            params = SwapParameters.default()
        requests = [
            SolveRequest(pstar=float(pstar), collateral=collateral, params=params)
            for pstar in pstars
        ]

        registry = get_registry()
        registry.counter(
            "repro_batches_total", help="Batches served by SwapService."
        ).inc()
        registry.counter(
            "repro_batch_requests_total",
            help="Requests received across all batches.",
        ).inc(len(requests))

        with span("batch.canonicalise"):
            keys = [request_key(request) for request in requests]

        misses: List[tuple] = []  # (key, pstar), unique keys only
        scheduled = set()
        resolved: Dict[str, Union[Result, ServiceError]] = {}
        from_cache = set()
        with span("batch.cache_lookup"):
            for key, request in zip(keys, requests):
                if key in scheduled or key in resolved:
                    continue
                hit = self._cache.get(key)
                if hit is not None:
                    resolved[key] = hit
                    from_cache.add(key)
                    continue
                misses.append((key, request.pstar))
                scheduled.add(key)
        registry.counter(
            "repro_batch_deduped_total",
            help="Requests collapsed onto an identical in-batch computation.",
        ).inc(len(requests) - len(scheduled) - len(from_cache))

        if misses:
            try:
                with span("batch.execute"):
                    from repro.core.engine import solve_grid

                    if self.faults.enabled and self.faults.fires(
                        "engine_error", f"sweep:{len(misses)}"
                    ):
                        raise RuntimeError("injected engine_error")
                    grid = solve_grid(
                        params,
                        [pstar for _, pstar in misses],
                        collateral=collateral,
                    )
                    for i, (key, _pstar) in enumerate(misses):
                        equilibrium = grid.equilibrium_at(i)
                        resolved[key] = equilibrium
                        self._cache.put(key, equilibrium)
            except Exception as exc:
                # Rung two of the degradation ladder: engine trouble
                # must not take the sweep verb down; the scalar
                # per-point path answers everything instead.
                registry.counter(
                    "repro_degraded_total",
                    help="Times the stack fell back to a degraded path.",
                    labelnames=("path",),
                ).inc(path="engine_to_scalar")
                get_logger().log(
                    "sweep_degraded",
                    path="engine_to_scalar",
                    error=f"{exc.__class__.__name__}: {exc}",
                    points=len(misses),
                )
                return self.run_batch(requests)

        return [
            BatchItem(
                key=key, ok=True, value=resolved[key], cached=key in from_cache
            )
            for key in keys
        ]

    # ------------------------------------------------------------------ #
    # conveniences
    # ------------------------------------------------------------------ #

    def solve(
        self,
        params: Optional[SwapParameters] = None,
        pstar: float = 2.0,
        collateral: float = 0.0,
    ) -> Result:
        """Solve a single game through the cache (raises on failure)."""
        if params is None:
            params = SwapParameters.default()
        request = SolveRequest(pstar=pstar, collateral=collateral, params=params)
        return self.run_batch([request])[0].unwrap()

    def success_rates(
        self,
        pstars: Sequence[float],
        params: Optional[SwapParameters] = None,
        collateral: float = 0.0,
    ) -> List[float]:
        """Eq. (31)/(40) rates on a ``P*`` grid (raises on any failure)."""
        return [
            item.unwrap().success_rate
            for item in self.sweep(pstars, params=params, collateral=collateral)
        ]

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Cache counter snapshot (per tier)."""
        return self._cache.stats()

    @staticmethod
    def _require_kind(requests: Sequence[Request], kind: type) -> None:
        for request in requests:
            if not isinstance(request, kind):
                raise RequestValidationError(
                    f"expected {kind.__name__}, got {type(request).__name__}"
                )


_default: Optional[SwapService] = None


def default_service() -> SwapService:
    """The process-wide shared service (serial, memory-cache only).

    Used by the analysis layer so that figure and sweep regeneration
    reuse each other's solves within one process. Serving deployments
    construct their own :class:`SwapService` with workers and a disk
    cache.
    """
    global _default
    if _default is None:
        _default = SwapService(max_workers=1)
    return _default
