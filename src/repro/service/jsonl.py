"""The JSON-lines batch wire format, shared by the CLI and HTTP server.

One request object per input line (``kind`` = ``solve`` or
``validate``; see :mod:`repro.service.requests`), one result record per
request line on the way out -- the exact byte format of
``repro-swaps batch`` since PR 1, now also spoken by ``POST /v1/batch``
(:mod:`repro.server`). Parse failures and invalid requests become
structured in-band error records; they never abort the stream.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Iterable, List, Tuple

from repro.service.errors import ServiceError, error_payload
from repro.service.requests import parse_request
from repro.service.serialize import encode_result

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.service.api import SwapService

__all__ = ["serve_lines", "render_records"]


def serve_lines(
    service: "SwapService", lines: Iterable[str]
) -> Tuple[bool, List[dict]]:
    """Parse and execute a JSON-lines batch against ``service``.

    Returns ``(all_parsed, records)``: ``all_parsed`` is False iff any
    non-blank line was not valid JSON, and each record is the JSON-safe
    per-line result object of the historical ``batch`` output format
    (``line``/``ok``/``kind``/``key``/``cached`` plus ``result`` or
    ``error``). Blank lines are skipped without a record.
    """
    # parse every line first so the batch executes (and dedupes) as one
    records = []  # (line_no, request | None, error_payload | None)
    all_parsed = True
    for line_no, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            all_parsed = False
            records.append(
                (line_no, None, {"code": "parse_error", "message": str(exc)})
            )
            continue
        try:
            records.append((line_no, parse_request(data), None))
        except ServiceError as exc:
            records.append((line_no, None, error_payload(exc)))

    requests = [request for _, request, _ in records if request is not None]
    items = iter(service.run_batch(requests))
    out_records: List[dict] = []
    for line_no, request, error in records:
        if request is None:
            out_records.append({"line": line_no, "ok": False, "error": error})
            continue
        item = next(items)
        out: dict = {
            "line": line_no,
            "ok": item.ok,
            "kind": request.to_dict()["kind"],
            "key": item.key,
            "cached": item.cached,
        }
        if item.ok:
            out["result"] = encode_result(item.value)
        else:
            out["error"] = item.error.to_dict()
        out_records.append(out)
    return all_parsed, out_records


def render_records(records: Iterable[dict]) -> str:
    """Records as a JSON-lines document (one compact object per line)."""
    return "".join(
        json.dumps(record, separators=(",", ":")) + "\n" for record in records
    )
