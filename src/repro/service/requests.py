"""Request types accepted by :class:`~repro.service.api.SwapService`.

Three request kinds cover the library's whole analytic surface:

* :class:`SolveRequest` -- solve one swap game (basic for ``Q = 0``,
  the Section IV collateral game for ``Q > 0``) and return the full
  equilibrium object;
* :class:`ValidateRequest` -- run the Monte Carlo validation of the
  analytic success rate at one ``(params, P*, Q)`` point;
* :class:`SwapGraphRequest` -- solve a multi-party / packetized swap
  graph (:mod:`repro.swapgraph`), optionally replaying the equilibrium
  on simulated chains.

All are frozen dataclasses with an exact ``to_dict``/``from_dict``
round-trip, so they can be hashed into canonical cache keys
(:mod:`repro.service.keys`), shipped to pool workers, and read from
JSON-lines batch files.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.core.parameters import SwapParameters
from repro.service.errors import RequestValidationError
from repro.swapgraph.spec import SwapGraphSpec

__all__ = [
    "SolveRequest",
    "ValidateRequest",
    "SwapGraphRequest",
    "Request",
    "parse_request",
]


def _check_pstar(pstar: float) -> float:
    pstar = float(pstar)
    if not (math.isfinite(pstar) and pstar > 0.0):
        raise RequestValidationError(f"pstar must be finite and > 0, got {pstar}")
    return pstar


def _check_collateral(collateral: float) -> float:
    collateral = float(collateral)
    if not (math.isfinite(collateral) and collateral >= 0.0):
        raise RequestValidationError(
            f"collateral must be finite and >= 0, got {collateral}"
        )
    return collateral


def _check_tolerance(tolerance: Optional[float]) -> Optional[float]:
    if tolerance is None:
        return None
    tolerance = float(tolerance)
    if not (math.isfinite(tolerance) and tolerance >= 0.0):
        raise RequestValidationError(
            f"tolerance must be finite and >= 0, got {tolerance}"
        )
    return tolerance


@dataclass(frozen=True)
class SolveRequest:
    """Solve one swap game at ``(params, pstar, collateral)``.

    ``tolerance`` is the caller's opt-in to approximate answers: when
    set (and the service has a surface loaded), the request may be
    answered by certified interpolation with absolute success-rate
    error at most ``tolerance`` instead of an exact solve.
    ``tolerance=0.0`` explicitly demands exactness; the default
    ``None`` is also exact unless the service was configured with a
    service-wide ``surface_tolerance``.
    """

    pstar: float
    collateral: float = 0.0
    params: SwapParameters = field(default_factory=SwapParameters.default)
    tolerance: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "pstar", _check_pstar(self.pstar))
        object.__setattr__(self, "collateral", _check_collateral(self.collateral))
        object.__setattr__(self, "tolerance", _check_tolerance(self.tolerance))

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation (the batch-file line format)."""
        return {
            "kind": "solve",
            "pstar": self.pstar,
            "collateral": self.collateral,
            "params": self.params.to_dict(),
            "tolerance": self.tolerance,
        }


@dataclass(frozen=True)
class ValidateRequest:
    """Monte-Carlo-validate the analytic SR at ``(params, pstar, collateral)``.

    ``seed=None`` asks the service to derive a deterministic seed from
    the request's canonical key (so identical requests always draw the
    same paths, in any process). ``protocol_level`` runs every episode
    through the full chain substrate instead of the vectorised
    strategy-level counts -- orders of magnitude slower, reserved for
    integration-grade validation.
    """

    pstar: float
    collateral: float = 0.0
    n_paths: int = 20_000
    seed: Optional[int] = None
    protocol_level: bool = False
    params: SwapParameters = field(default_factory=SwapParameters.default)

    def __post_init__(self) -> None:
        object.__setattr__(self, "pstar", _check_pstar(self.pstar))
        object.__setattr__(self, "collateral", _check_collateral(self.collateral))
        if int(self.n_paths) < 1:
            raise RequestValidationError(
                f"n_paths must be >= 1, got {self.n_paths}"
            )
        object.__setattr__(self, "n_paths", int(self.n_paths))
        if self.seed is not None:
            object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(self, "protocol_level", bool(self.protocol_level))

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation (the batch-file line format)."""
        return {
            "kind": "validate",
            "pstar": self.pstar,
            "collateral": self.collateral,
            "n_paths": self.n_paths,
            "seed": self.seed,
            "protocol_level": self.protocol_level,
            "params": self.params.to_dict(),
        }


@dataclass(frozen=True)
class SwapGraphRequest:
    """Solve a swap graph, optionally with a chain-substrate replay.

    ``n_lattice=None`` lets the solver pick: closed-form delegation for
    the paper-shaped ``k=1, n=2`` case, otherwise an adaptive lattice
    within the state budget. ``replay=True`` re-runs the equilibrium
    strategy on one simulated chain per edge (``replay_paths``
    episodes); ``seed=None`` derives a deterministic replay seed from
    the request's canonical key, like :class:`ValidateRequest`.
    """

    spec: SwapGraphSpec
    n_lattice: Optional[int] = None
    replay: bool = False
    replay_paths: int = 400
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.spec, SwapGraphSpec):
            raise RequestValidationError(
                f"spec must be a SwapGraphSpec, got {type(self.spec).__name__}"
            )
        if self.n_lattice is not None:
            n_lattice = int(self.n_lattice)
            if n_lattice < 3:
                raise RequestValidationError(
                    f"n_lattice must be >= 3, got {n_lattice}"
                )
            object.__setattr__(self, "n_lattice", n_lattice)
        object.__setattr__(self, "replay", bool(self.replay))
        if int(self.replay_paths) < 1:
            raise RequestValidationError(
                f"replay_paths must be >= 1, got {self.replay_paths}"
            )
        object.__setattr__(self, "replay_paths", int(self.replay_paths))
        if self.seed is not None:
            object.__setattr__(self, "seed", int(self.seed))

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation (the batch-file line format)."""
        return {
            "kind": "swap_graph",
            "spec": self.spec.to_dict(),
            "n_lattice": self.n_lattice,
            "replay": self.replay,
            "replay_paths": self.replay_paths,
            "seed": self.seed,
        }


Request = Union[SolveRequest, ValidateRequest, SwapGraphRequest]


def _parse_params(raw: object) -> SwapParameters:
    if raw is None:
        return SwapParameters.default()
    if not isinstance(raw, dict):
        raise RequestValidationError(
            f"params must be an object, got {type(raw).__name__}"
        )
    try:
        return SwapParameters.from_dict(raw)
    except (KeyError, TypeError, ValueError) as exc:
        raise RequestValidationError(f"invalid params: {exc}") from exc


def parse_request(data: Dict[str, object]) -> Request:
    """Build a request from one decoded JSON-lines record.

    The ``kind`` field selects the type; ``params`` accepts either the
    nested :meth:`SwapParameters.to_dict` form or a flat override map
    (``{"sigma": 0.15}``) over the Table III defaults. Raises
    :class:`RequestValidationError` on any malformed field -- callers
    turn that into a structured per-line error, never a crash.
    """
    if not isinstance(data, dict):
        raise RequestValidationError(
            f"request must be an object, got {type(data).__name__}"
        )
    kind = data.get("kind", "solve")
    known_solve = {"kind", "pstar", "collateral", "params", "tolerance"}
    known_validate = known_solve - {"tolerance"} | {
        "n_paths",
        "seed",
        "protocol_level",
    }
    try:
        if kind == "solve":
            unknown = set(data) - known_solve
            if unknown:
                raise RequestValidationError(
                    f"unknown solve fields {sorted(unknown)}"
                )
            return SolveRequest(
                pstar=data.get("pstar", 2.0),  # type: ignore[arg-type]
                collateral=data.get("collateral", 0.0),  # type: ignore[arg-type]
                params=_parse_params(data.get("params")),
                tolerance=data.get("tolerance"),  # type: ignore[arg-type]
            )
        if kind == "validate":
            unknown = set(data) - known_validate
            if unknown:
                raise RequestValidationError(
                    f"unknown validate fields {sorted(unknown)}"
                )
            return ValidateRequest(
                pstar=data.get("pstar", 2.0),  # type: ignore[arg-type]
                collateral=data.get("collateral", 0.0),  # type: ignore[arg-type]
                n_paths=data.get("n_paths", 20_000),  # type: ignore[arg-type]
                seed=data.get("seed"),  # type: ignore[arg-type]
                protocol_level=data.get("protocol_level", False),  # type: ignore[arg-type]
                params=_parse_params(data.get("params")),
            )
        if kind == "swap_graph":
            known_graph = {
                "kind", "spec", "n_lattice", "replay", "replay_paths", "seed",
            }
            unknown = set(data) - known_graph
            if unknown:
                raise RequestValidationError(
                    f"unknown swap_graph fields {sorted(unknown)}"
                )
            raw_spec = data.get("spec")
            if not isinstance(raw_spec, dict):
                raise RequestValidationError(
                    "swap_graph requests need a 'spec' object"
                )
            return SwapGraphRequest(
                spec=SwapGraphSpec.from_dict(raw_spec),
                n_lattice=data.get("n_lattice"),  # type: ignore[arg-type]
                replay=data.get("replay", False),  # type: ignore[arg-type]
                replay_paths=data.get("replay_paths", 400),  # type: ignore[arg-type]
                seed=data.get("seed"),  # type: ignore[arg-type]
            )
    except (TypeError, ValueError) as exc:
        raise RequestValidationError(str(exc)) from exc
    raise RequestValidationError(
        f"unknown request kind {kind!r} "
        "(expected 'solve', 'validate' or 'swap_graph')"
    )
