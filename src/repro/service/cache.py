"""Two-tier result cache: in-memory LRU in front of an on-disk JSON store.

The memory tier holds live result objects and serves repeated solves
at dict-lookup cost; the optional disk tier persists the JSON encoding
(:mod:`repro.service.serialize`) across service instances and
processes, one ``<key>.json`` file per entry, written atomically.
Keys are the canonical request hashes of :mod:`repro.service.keys`,
so a disk entry is valid exactly as long as its schema version is.

The disk tier defends itself against rot: every entry is written with
a SHA-256 checksum of its payload, and a file that fails to decode or
to verify is **quarantined** -- renamed to ``<key>.json.quarantine``,
counted in the ``corrupt`` stat and the
``repro_cache_corrupt_total{tier="disk"}`` counter, and never read
again -- so a corrupted entry costs exactly one re-solve instead of a
re-parse on every lookup (or, worse, a silently wrong number). I/O
errors degrade to misses; a failing disk never takes a batch down.

All counters are exposed via :class:`CacheStats` and mirrored into the
active :mod:`repro.obs` registry (``repro_cache_*_total{tier=...}``,
plus ``repro_cache_disk_seconds{op=read|write}`` latency histograms);
a warm Figure-6 sweep should show essentially only hits.

Chaos hooks: an optional :class:`~repro.faults.injector.FaultInjector`
can garble a just-written entry (``cache_corrupt``), fail an I/O call
(``cache_io_error``), or stall it (``disk_slow``) -- deterministic
adversity for the quarantine and degradation paths above (see
:mod:`repro.faults` and ``tests/faults/``).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

from repro.faults.injector import NULL_INJECTOR, build_injector
from repro.obs.metrics import get_registry
from repro.service.serialize import decode_result, encode_result

__all__ = [
    "CacheStats",
    "LRUCache",
    "DiskCache",
    "TieredCache",
    "QUARANTINE_SUFFIX",
]

#: Suffix appended to quarantined disk entries. Quarantined files no
#: longer match the ``*.json`` glob, so they are invisible to lookups,
#: pruning, and ``len()`` -- kept only for post-mortem inspection.
QUARANTINE_SUFFIX = ".quarantine"


class _CacheMetrics:
    """The registry instruments of one cache tier, bound once."""

    def __init__(self, tier: str) -> None:
        registry = get_registry()
        self.tier = tier
        self.hits = registry.counter(
            "repro_cache_hits_total",
            help="Cache lookups served from this tier.",
            labelnames=("tier",),
        )
        self.misses = registry.counter(
            "repro_cache_misses_total",
            help="Cache lookups this tier could not serve.",
            labelnames=("tier",),
        )
        self.evictions = registry.counter(
            "repro_cache_evictions_total",
            help="Entries evicted from this tier.",
            labelnames=("tier",),
        )
        self.puts = registry.counter(
            "repro_cache_puts_total",
            help="Entries written into this tier.",
            labelnames=("tier",),
        )
        self.corrupt = registry.counter(
            "repro_cache_corrupt_total",
            help="Undecodable or checksum-failing entries quarantined.",
            labelnames=("tier",),
        )
        self.io_errors = registry.counter(
            "repro_cache_io_errors_total",
            help="I/O failures absorbed by this tier (degraded to misses).",
            labelnames=("tier",),
        )
        # materialise zero-valued series so exporters always show the
        # family for a constructed tier, even before any traffic
        for counter in (
            self.hits,
            self.misses,
            self.evictions,
            self.puts,
            self.corrupt,
            self.io_errors,
        ):
            counter.inc(0, tier=tier)


@dataclass
class CacheStats:
    """Hit/miss/eviction/corruption counters of one cache tier.

    ``corrupt`` counts entries that failed to decode or verify and
    were quarantined; every corrupt lookup *also* counts as a miss
    (the tier could not serve it), so ``hits + misses`` remains the
    total lookup count.

    The surface tier (:mod:`repro.surface`) reuses this class with one
    extra counter: ``out_of_bounds`` counts lookups refused because the
    request was *off-surface* (frozen-parameter mismatch or a
    coordinate outside the grid). For a surface, ``misses`` means
    on-surface but refused on tolerance (the cell's certified bound
    exceeded the caller's), and ``hits + misses + out_of_bounds`` is
    the total lookup count. Cache tiers leave ``out_of_bounds`` at 0.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    puts: int = 0
    corrupt: int = 0
    out_of_bounds: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view (stable keys, used by ``SwapService.stats``)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "puts": self.puts,
            "corrupt": self.corrupt,
            "out_of_bounds": self.out_of_bounds,
        }


class LRUCache:
    """A bounded mapping with least-recently-used eviction."""

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self.stats = CacheStats()
        self._metrics = _CacheMetrics("memory")
        self._entries: "OrderedDict[str, Any]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[Any]:
        """The cached value, refreshed to most-recent, or ``None``."""
        if key not in self._entries:
            self.stats.misses += 1
            self._metrics.misses.inc(tier="memory")
            return None
        self.stats.hits += 1
        self._metrics.hits.inc(tier="memory")
        self._entries.move_to_end(key)
        return self._entries[key]

    def put(self, key: str, value: Any) -> None:
        """Insert/refresh ``key``, evicting the LRU entry when full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        self.stats.puts += 1
        self._metrics.puts.inc(tier="memory")
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            self._metrics.evictions.inc(tier="memory")

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._entries.clear()


class _ChecksumMismatch(Exception):
    """A disk entry decoded as JSON but failed payload verification."""


def _payload_checksum(encoded: Dict[str, Any]) -> str:
    """SHA-256 of the canonical JSON of an encoded result."""
    canonical = json.dumps(encoded, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class DiskCache:
    """A directory of ``<key>.json`` result files.

    Each entry carries a payload checksum; a file that fails to decode
    *or* to verify is quarantined (renamed to
    ``<key>.json.quarantine``) so it is never re-read -- the lookup
    counts as ``corrupt`` + miss and the next request re-solves and
    re-caches a good entry. Entries written before checksums existed
    verify trivially (no stored checksum) and stay readable. I/O
    errors on read or write are absorbed: a read error is a miss, a
    write error skips persistence -- the cache is best-effort, never a
    crash source. Writes go through a temp file + ``os.replace`` so a
    process crash never leaves a half-written entry behind.

    ``max_entries`` bounds the directory: every ``put`` that pushes it
    past the limit prunes the oldest-mtime entries (a disk-tier LRU
    approximation -- reads do not refresh mtimes, so this is
    oldest-written-first), counted in the tier's eviction counters.

    ``injector`` is the chaos hook: ``disk_slow`` stalls an I/O call,
    ``cache_io_error`` fails it, and ``cache_corrupt`` garbles the
    entry just written (so the *real* quarantine path runs on the next
    lookup). Disabled by default via the shared ``NULL_INJECTOR``.
    """

    def __init__(
        self,
        directory,
        max_entries: Optional[int] = None,
        injector=None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_entries = int(max_entries) if max_entries is not None else None
        self.injector = build_injector(injector)
        self.stats = CacheStats()
        self._metrics = _CacheMetrics("disk")
        self._io_seconds = get_registry().histogram(
            "repro_cache_disk_seconds",
            help="Wall-clock duration of disk-tier reads and writes.",
            labelnames=("op",),
        )

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def _miss(self) -> None:
        self.stats.misses += 1
        self._metrics.misses.inc(tier="disk")

    def _quarantine(self, path: Path) -> None:
        """Move a bad entry aside so it is never parsed again."""
        try:
            path.rename(path.with_name(path.name + QUARANTINE_SUFFIX))
        except OSError:
            # fall back to deleting: either way it must not be re-read
            try:
                path.unlink()
            except OSError:
                pass
        self.stats.corrupt += 1
        self._metrics.corrupt.inc(tier="disk")

    def get(self, key: str) -> Optional[Any]:
        """Decode the stored result, or ``None`` on miss/corruption.

        A corrupt or checksum-failing entry is quarantined before the
        miss is reported; an ``OSError`` degrades to a plain miss.
        """
        path = self._path(key)
        started = time.perf_counter()
        # the read duration is observed on *every* outcome -- hits,
        # misses, and corrupt files alike -- so the latency histogram
        # reflects the tier's true cost, not just its happy path
        try:
            try:
                if self.injector.enabled:
                    self.injector.sleep("disk_slow", key)
                    if self.injector.fires("cache_io_error", key):
                        raise OSError("injected cache_io_error on read")
                with path.open("r", encoding="utf-8") as handle:
                    payload = json.load(handle)
                stored = payload["result"]
                checksum = payload.get("checksum")
                if checksum is not None and checksum != _payload_checksum(stored):
                    raise _ChecksumMismatch(key)
                value = decode_result(stored)
            except FileNotFoundError:
                self._miss()
                return None
            except OSError:
                # transient I/O trouble: the file may be fine; miss only
                self._metrics.io_errors.inc(tier="disk")
                self._miss()
                return None
            except (
                KeyError,
                TypeError,
                ValueError,
                json.JSONDecodeError,
                _ChecksumMismatch,
            ):
                self._quarantine(path)
                self._miss()
                return None
        finally:
            self._io_seconds.observe(time.perf_counter() - started, op="read")
        self.stats.hits += 1
        self._metrics.hits.inc(tier="disk")
        return value

    def put(self, key: str, value: Any) -> None:
        """Atomically persist ``value`` under ``key`` (best-effort).

        An ``OSError`` (full or failing disk) skips persistence and is
        counted, never raised -- the memory tier and the solvers keep
        the service correct without the disk.
        """
        encoded = encode_result(value)
        payload = {
            "key": key,
            "result": encoded,
            "checksum": _payload_checksum(encoded),
        }
        started = time.perf_counter()
        try:
            if self.injector.enabled:
                self.injector.sleep("disk_slow", key)
                if self.injector.fires("cache_io_error", key):
                    raise OSError("injected cache_io_error on write")
            descriptor, tmp_name = tempfile.mkstemp(
                dir=self.directory, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle, separators=(",", ":"))
                os.replace(tmp_name, self._path(key))
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            self._metrics.io_errors.inc(tier="disk")
            return
        finally:
            self._io_seconds.observe(time.perf_counter() - started, op="write")
        if self.injector.enabled and self.injector.fires("cache_corrupt", key):
            # garble the entry *on disk*: the next lookup must run the
            # genuine decode-fail -> quarantine -> re-solve path
            self._path(key).write_text('{"key": "rotten', encoding="utf-8")
        self.stats.puts += 1
        self._metrics.puts.inc(tier="disk")
        if self.max_entries is not None:
            self._prune()

    def _prune(self) -> None:
        """Drop oldest-mtime entries until the directory fits the bound."""
        entries = []
        for path in self.directory.glob("*.json"):
            try:
                entries.append((path.stat().st_mtime, path))
            except OSError:  # concurrently pruned by another process
                continue
        excess = len(entries) - self.max_entries
        if excess <= 0:
            return
        entries.sort(key=lambda pair: pair[0])
        for _mtime, path in entries[:excess]:
            try:
                path.unlink()
            except OSError:
                continue
            self.stats.evictions += 1
            self._metrics.evictions.inc(tier="disk")


@dataclass
class TieredCache:
    """Memory LRU over an optional disk store.

    ``get`` consults memory first, then disk (promoting disk hits into
    memory); ``put`` writes through to both tiers.
    """

    memory: LRUCache = field(default_factory=LRUCache)
    disk: Optional[DiskCache] = None

    @staticmethod
    def build(
        maxsize: int = 4096,
        cache_dir: Optional[str] = None,
        disk_entries: Optional[int] = None,
        injector=None,
    ) -> "TieredCache":
        """The standard construction used by ``SwapService``.

        ``disk_entries`` bounds the on-disk tier (``None``: unbounded);
        it is ignored when no ``cache_dir`` is configured. ``injector``
        is the disk tier's chaos hook (see :mod:`repro.faults`).
        """
        return TieredCache(
            memory=LRUCache(maxsize=maxsize),
            disk=(
                DiskCache(cache_dir, max_entries=disk_entries, injector=injector)
                if cache_dir is not None
                else None
            ),
        )

    def get(self, key: str) -> Optional[Any]:
        """Look the key up through both tiers."""
        value = self.memory.get(key)
        if value is not None:
            return value
        if self.disk is None:
            return None
        value = self.disk.get(key)
        if value is not None:
            self.memory.put(key, value)
        return value

    def put(self, key: str, value: Any) -> None:
        """Write through to memory and (if configured) disk."""
        self.memory.put(key, value)
        if self.disk is not None:
            self.disk.put(key, value)

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-tier counter snapshot."""
        out = {"memory": self.memory.stats.as_dict()}
        if self.disk is not None:
            out["disk"] = self.disk.stats.as_dict()
        return out
