"""Two-tier result cache: in-memory LRU in front of an on-disk JSON store.

The memory tier holds live result objects and serves repeated solves
at dict-lookup cost; the optional disk tier persists the JSON encoding
(:mod:`repro.service.serialize`) across service instances and
processes, one ``<key>.json`` file per entry, written atomically.
Keys are the canonical request hashes of :mod:`repro.service.keys`,
so a disk entry is valid exactly as long as its schema version is.

All counters are exposed via :class:`CacheStats` and mirrored into the
active :mod:`repro.obs` registry (``repro_cache_*_total{tier=...}``,
plus ``repro_cache_disk_seconds{op=read|write}`` latency histograms);
a warm Figure-6 sweep should show essentially only hits.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

from repro.obs.metrics import get_registry
from repro.service.serialize import decode_result, encode_result

__all__ = ["CacheStats", "LRUCache", "DiskCache", "TieredCache"]


class _CacheMetrics:
    """The registry instruments of one cache tier, bound once."""

    def __init__(self, tier: str) -> None:
        registry = get_registry()
        self.tier = tier
        self.hits = registry.counter(
            "repro_cache_hits_total",
            help="Cache lookups served from this tier.",
            labelnames=("tier",),
        )
        self.misses = registry.counter(
            "repro_cache_misses_total",
            help="Cache lookups this tier could not serve.",
            labelnames=("tier",),
        )
        self.evictions = registry.counter(
            "repro_cache_evictions_total",
            help="Entries evicted from this tier.",
            labelnames=("tier",),
        )
        self.puts = registry.counter(
            "repro_cache_puts_total",
            help="Entries written into this tier.",
            labelnames=("tier",),
        )
        # materialise zero-valued series so exporters always show the
        # family for a constructed tier, even before any traffic
        for counter in (self.hits, self.misses, self.evictions, self.puts):
            counter.inc(0, tier=tier)


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one cache tier."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    puts: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view (stable keys, used by ``SwapService.stats``)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "puts": self.puts,
        }


class LRUCache:
    """A bounded mapping with least-recently-used eviction."""

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self.stats = CacheStats()
        self._metrics = _CacheMetrics("memory")
        self._entries: "OrderedDict[str, Any]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[Any]:
        """The cached value, refreshed to most-recent, or ``None``."""
        if key not in self._entries:
            self.stats.misses += 1
            self._metrics.misses.inc(tier="memory")
            return None
        self.stats.hits += 1
        self._metrics.hits.inc(tier="memory")
        self._entries.move_to_end(key)
        return self._entries[key]

    def put(self, key: str, value: Any) -> None:
        """Insert/refresh ``key``, evicting the LRU entry when full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        self.stats.puts += 1
        self._metrics.puts.inc(tier="memory")
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            self._metrics.evictions.inc(tier="memory")

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._entries.clear()


class DiskCache:
    """A directory of ``<key>.json`` result files.

    Corrupt or undecodable files count as misses and are left in place
    for inspection; writes go through a temp file + ``os.replace`` so a
    crash never leaves a half-written entry behind. ``max_entries``
    bounds the directory: every ``put`` that pushes it past the limit
    prunes the oldest-mtime entries (a disk-tier LRU approximation --
    reads do not refresh mtimes, so this is oldest-written-first),
    counted in the tier's eviction counters.
    """

    def __init__(self, directory, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_entries = int(max_entries) if max_entries is not None else None
        self.stats = CacheStats()
        self._metrics = _CacheMetrics("disk")
        self._io_seconds = get_registry().histogram(
            "repro_cache_disk_seconds",
            help="Wall-clock duration of disk-tier reads and writes.",
            labelnames=("op",),
        )

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def get(self, key: str) -> Optional[Any]:
        """Decode the stored result, or ``None`` on miss/corruption."""
        path = self._path(key)
        started = time.perf_counter()
        # the read duration is observed on *every* outcome -- hits,
        # misses, and corrupt files alike -- so the latency histogram
        # reflects the tier's true cost, not just its happy path
        try:
            try:
                with path.open("r", encoding="utf-8") as handle:
                    payload = json.load(handle)
                value = decode_result(payload["result"])
            except FileNotFoundError:
                self.stats.misses += 1
                self._metrics.misses.inc(tier="disk")
                return None
            except (KeyError, TypeError, ValueError, json.JSONDecodeError):
                self.stats.misses += 1
                self._metrics.misses.inc(tier="disk")
                return None
        finally:
            self._io_seconds.observe(time.perf_counter() - started, op="read")
        self.stats.hits += 1
        self._metrics.hits.inc(tier="disk")
        return value

    def put(self, key: str, value: Any) -> None:
        """Atomically persist ``value`` under ``key``."""
        payload = {"key": key, "result": encode_result(value)}
        started = time.perf_counter()
        descriptor, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(tmp_name, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._io_seconds.observe(time.perf_counter() - started, op="write")
        self.stats.puts += 1
        self._metrics.puts.inc(tier="disk")
        if self.max_entries is not None:
            self._prune()

    def _prune(self) -> None:
        """Drop oldest-mtime entries until the directory fits the bound."""
        entries = []
        for path in self.directory.glob("*.json"):
            try:
                entries.append((path.stat().st_mtime, path))
            except OSError:  # concurrently pruned by another process
                continue
        excess = len(entries) - self.max_entries
        if excess <= 0:
            return
        entries.sort(key=lambda pair: pair[0])
        for _mtime, path in entries[:excess]:
            try:
                path.unlink()
            except OSError:
                continue
            self.stats.evictions += 1
            self._metrics.evictions.inc(tier="disk")


@dataclass
class TieredCache:
    """Memory LRU over an optional disk store.

    ``get`` consults memory first, then disk (promoting disk hits into
    memory); ``put`` writes through to both tiers.
    """

    memory: LRUCache = field(default_factory=LRUCache)
    disk: Optional[DiskCache] = None

    @staticmethod
    def build(
        maxsize: int = 4096,
        cache_dir: Optional[str] = None,
        disk_entries: Optional[int] = None,
    ) -> "TieredCache":
        """The standard construction used by ``SwapService``.

        ``disk_entries`` bounds the on-disk tier (``None``: unbounded);
        it is ignored when no ``cache_dir`` is configured.
        """
        return TieredCache(
            memory=LRUCache(maxsize=maxsize),
            disk=(
                DiskCache(cache_dir, max_entries=disk_entries)
                if cache_dir is not None
                else None
            ),
        )

    def get(self, key: str) -> Optional[Any]:
        """Look the key up through both tiers."""
        value = self.memory.get(key)
        if value is not None:
            return value
        if self.disk is None:
            return None
        value = self.disk.get(key)
        if value is not None:
            self.memory.put(key, value)
        return value

    def put(self, key: str, value: Any) -> None:
        """Write through to memory and (if configured) disk."""
        self.memory.put(key, value)
        if self.disk is not None:
            self.disk.put(key, value)

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-tier counter snapshot."""
        out = {"memory": self.memory.stats.as_dict()}
        if self.disk is not None:
            out["disk"] = self.disk.stats.as_dict()
        return out
