"""Deterministic fault injection for the serving stack.

The chaos layer of the repo: a declarative, seed-deterministic
description of *what should go wrong* (:mod:`repro.faults.plan`) and
the runtime that makes it go wrong at explicit hook points across the
service, server, client, and chain layers
(:mod:`repro.faults.injector`). Activated via
``SwapService(faults=...)``, ``repro-swaps batch/serve --fault-plan
plan.json``, or directly in tests; off by default everywhere through
the shared :data:`~repro.faults.injector.NULL_INJECTOR`.

The point is not the faults but the healing they prove:
``tests/faults/`` asserts that under any planned fault the stack
answers either the bit-identical fault-free result or a typed
retryable error -- never a silently wrong number, never a hang past
the deadline.

Quickstart::

    from repro.faults import FaultSpec, InjectionPlan
    from repro.service import SwapService

    plan = InjectionPlan(
        faults=(FaultSpec(kind="worker_crash", count=1),), seed=7
    )
    service = SwapService(max_workers=2, faults=plan)
    items = service.sweep([1.8, 2.0, 2.2])   # heals around the crash
"""

from repro.faults.injector import (
    NULL_INJECTOR,
    FaultInjector,
    NullInjector,
    build_injector,
)
from repro.faults.plan import FAULT_KINDS, FaultSpec, InjectionPlan

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "InjectionPlan",
    "FaultInjector",
    "NullInjector",
    "NULL_INJECTOR",
    "build_injector",
]
