"""Typed, seed-deterministic fault plans.

An :class:`InjectionPlan` is the declarative description of a chaos
run: a list of :class:`FaultSpec` records, each naming one fault
*kind* (see :data:`FAULT_KINDS`), an optional match predicate over the
hook-site key, and a schedule (``probability`` per eligible event,
``after`` events skipped first, at most ``count`` injections). The
plan carries one ``seed``; every spec draws from its own
:class:`random.Random` stream derived from ``(seed, spec index)``, so
a failing chaos run replays *exactly* -- same plan, same seed, same
request order, same injected faults.

Plans round-trip through JSON (:meth:`InjectionPlan.to_dict` /
:meth:`InjectionPlan.from_dict` / :meth:`InjectionPlan.load`), which
is the ``repro-swaps --fault-plan plan.json`` file format::

    {
      "seed": 7,
      "faults": [
        {"kind": "worker_crash", "match": "\"pstar\":2.5", "count": 1},
        {"kind": "http_slow", "probability": 0.25, "delay": 0.05}
      ]
    }

The *kind* names the hook site that honours the spec:

==================  ====================================================
kind                injected behaviour (hook site)
==================  ====================================================
``worker_crash``    pool worker dies mid-request (``executor.WorkerPool``)
``worker_hang``     request stalls ``delay`` seconds in the worker
``cache_corrupt``   a just-written disk-cache entry is garbled on disk
``cache_io_error``  disk-cache read/write raises ``OSError``
``disk_slow``       disk-cache I/O stalls ``delay`` seconds
``http_drop``       connection dropped without a response (server/client)
``http_slow``       response stalls ``delay`` seconds (server/client)
``engine_error``    the vectorised grid engine raises (``SwapService.sweep``)
``oracle_outage``   the Section IV Oracle refuses to settle
``surface_corrupt``   a surface artifact fails verification and is
                      quarantined on load (``surface.artifact``)
``surface_io_error``  reading a surface artifact raises ``OSError``
``replica_down``      the sharded router treats the picked replica as
                      dead and heals by re-routing to the next ring
                      node (``server.aio``; key = replica name)
``swapgraph_error``   a swap-graph request fails with a typed
                      ``SolveFailedError`` before dispatch
                      (``SwapService.run_batch``)
``swapgraph_slow``    a swap-graph request stalls ``delay`` seconds at
                      dispatch (``SwapService.run_batch``)
``replica_crash_loop``  a just-restarted replica is killed before its
                        announce, exercising the supervisor's backoff
                        and flap detector (``server.replica``; key =
                        replica name)
``admin_partition``   the router's ``/admin/v1/*`` surface answers a
                      retryable ``503 admin_unavailable``
                      (``server.aio``; key = admin path)
==================  ====================================================
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = ["FAULT_KINDS", "FaultSpec", "InjectionPlan"]

FAULT_KINDS: Tuple[str, ...] = (
    "worker_crash",
    "worker_hang",
    "cache_corrupt",
    "cache_io_error",
    "disk_slow",
    "http_drop",
    "http_slow",
    "engine_error",
    "oracle_outage",
    "surface_corrupt",
    "surface_io_error",
    "replica_down",
    "swapgraph_error",
    "swapgraph_slow",
    "replica_crash_loop",
    "admin_partition",
)


@dataclass(frozen=True)
class FaultSpec:
    """One fault kind with a match predicate and an injection schedule.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    match:
        Substring predicate over the hook-site key (the canonical
        request payload at executor sites, the cache key at cache
        sites, the URL path at HTTP sites). Empty string matches every
        event at sites of this kind.
    probability:
        Chance of injecting at each eligible event, drawn from the
        spec's seeded stream (1.0 = always).
    count:
        Ceiling on total injections from this spec (``None``:
        unlimited). ``count=1`` is the canonical "fail once, then
        recover" experiment.
    after:
        Number of eligible events to let pass untouched before the
        schedule starts.
    delay:
        Stall duration in seconds for the timing faults
        (``worker_hang``, ``disk_slow``, ``http_slow``); ignored by
        the others.
    """

    kind: str
    match: str = ""
    probability: float = 1.0
    count: Optional[int] = None
    after: int = 0
    delay: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} "
                f"(expected one of {', '.join(FAULT_KINDS)})"
            )
        probability = float(self.probability)
        if not (0.0 <= probability <= 1.0):
            raise ValueError(
                f"probability must be in [0, 1], got {probability}"
            )
        object.__setattr__(self, "probability", probability)
        if self.count is not None:
            count = int(self.count)
            if count < 1:
                raise ValueError(f"count must be >= 1, got {count}")
            object.__setattr__(self, "count", count)
        after = int(self.after)
        if after < 0:
            raise ValueError(f"after must be >= 0, got {after}")
        object.__setattr__(self, "after", after)
        delay = float(self.delay)
        if not (math.isfinite(delay) and delay >= 0.0):
            raise ValueError(f"delay must be finite and >= 0, got {delay}")
        object.__setattr__(self, "delay", delay)

    def matches(self, key: str) -> bool:
        """Whether this spec is eligible for an event with ``key``."""
        return self.match in key

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form (the plan-file entry format)."""
        out: Dict[str, object] = {"kind": self.kind}
        if self.match:
            out["match"] = self.match
        if self.probability != 1.0:
            out["probability"] = self.probability
        if self.count is not None:
            out["count"] = self.count
        if self.after:
            out["after"] = self.after
        if self.delay != 0.05:
            out["delay"] = self.delay
        return out

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "FaultSpec":
        """Build from one plan-file entry; rejects unknown fields."""
        if not isinstance(data, dict):
            raise ValueError(
                f"fault spec must be an object, got {type(data).__name__}"
            )
        known = {"kind", "match", "probability", "count", "after", "delay"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault-spec fields {sorted(unknown)}")
        if "kind" not in data:
            raise ValueError("fault spec needs a 'kind'")
        return FaultSpec(
            kind=str(data["kind"]),
            match=str(data.get("match", "")),
            probability=data.get("probability", 1.0),  # type: ignore[arg-type]
            count=data.get("count"),  # type: ignore[arg-type]
            after=data.get("after", 0),  # type: ignore[arg-type]
            delay=data.get("delay", 0.05),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class InjectionPlan:
    """A seeded list of fault specs -- one reproducible chaos run."""

    faults: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        object.__setattr__(self, "seed", int(self.seed))

    def __len__(self) -> int:
        return len(self.faults)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form (the ``--fault-plan`` file format)."""
        return {
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.faults],
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "InjectionPlan":
        """Build from a decoded plan file; rejects unknown fields."""
        if not isinstance(data, dict):
            raise ValueError(
                f"fault plan must be an object, got {type(data).__name__}"
            )
        unknown = set(data) - {"seed", "faults"}
        if unknown:
            raise ValueError(f"unknown fault-plan fields {sorted(unknown)}")
        raw_faults = data.get("faults", [])
        if not isinstance(raw_faults, list):
            raise ValueError(
                f"faults must be a list, got {type(raw_faults).__name__}"
            )
        return InjectionPlan(
            faults=tuple(FaultSpec.from_dict(entry) for entry in raw_faults),
            seed=data.get("seed", 0),  # type: ignore[arg-type]
        )

    @staticmethod
    def load(path) -> "InjectionPlan":
        """Read a plan from a JSON file (the CLI entry point)."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except OSError as exc:
            raise ValueError(f"cannot read fault plan {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ValueError(f"fault plan {path} is not valid JSON: {exc}") from exc
        return InjectionPlan.from_dict(data)

    def dump(self, path) -> None:
        """Write the plan as JSON (inverse of :meth:`load`)."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
