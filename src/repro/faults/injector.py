"""The runtime arm of a fault plan: deterministic injection decisions.

A :class:`FaultInjector` binds an :class:`~repro.faults.plan.InjectionPlan`
to seeded per-spec RNG streams and answers one question at every hook
site: *does a fault of this kind fire for this key, right now?* The
decision sequence is a pure function of ``(plan, event order)`` --
replaying the same requests against the same plan injects the same
faults, which is what makes a failing chaos run debuggable.

Hook sites call one of three shapes:

* :meth:`FaultInjector.fires` -- boolean faults (``worker_crash``,
  ``cache_corrupt``, ``http_drop``, ``engine_error``, ...);
* :meth:`FaultInjector.delay_for` -- timing faults; returns the stall
  seconds or ``None`` (``worker_hang``, ``disk_slow``, ``http_slow``);
* :meth:`FaultInjector.sleep` -- ``delay_for`` + the sleep itself, for
  sites that stall in place.

Every injection lands in the active registry as
``repro_fault_injected_total{kind=...}`` and one structured
``fault_injected`` log event, so a chaos run's metrics name exactly
what adversity it survived.

The default everywhere is :class:`NullInjector` -- a singleton whose
``enabled`` flag is False and whose decision methods return
immediately. Hook sites guard any non-trivial key construction behind
``injector.enabled``, keeping the disabled hot path to one attribute
read (benchmarked <2% on the cached-solve path in
``benchmarks/test_bench_faults.py``).
"""

from __future__ import annotations

import random
import threading
import time
from typing import Dict, List, Optional, Union

from repro.faults.plan import FaultSpec, InjectionPlan
from repro.obs.logging import get_logger
from repro.obs.metrics import get_registry
from repro.stochastic.rng import stable_seed

__all__ = [
    "FaultInjector",
    "NullInjector",
    "NULL_INJECTOR",
    "build_injector",
]


class FaultInjector:
    """Deterministic decisions for one :class:`InjectionPlan`.

    Thread-safe: hook sites fire from request threads, pool dispatch,
    and the HTTP handler concurrently; each spec's RNG draw and
    counters are taken under one lock, so the decision sequence is a
    function of the global event order (which chaos tests pin by
    issuing requests sequentially).
    """

    enabled = True

    def __init__(self, plan: InjectionPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._rngs = [
            random.Random(stable_seed("repro.faults", plan.seed, index))
            for index in range(len(plan.faults))
        ]
        self._eligible = [0] * len(plan.faults)
        self._injected = [0] * len(plan.faults)
        self._by_kind: Dict[str, List[int]] = {}
        for index, spec in enumerate(plan.faults):
            self._by_kind.setdefault(spec.kind, []).append(index)
        self._metric = get_registry().counter(
            "repro_fault_injected_total",
            help="Faults deliberately injected, by kind.",
            labelnames=("kind",),
        )

    # ------------------------------------------------------------------ #
    # decisions
    # ------------------------------------------------------------------ #

    def decide(self, kind: str, key: str = "") -> Optional[FaultSpec]:
        """The spec that fires for this event, or ``None``.

        At most one spec fires per event (first matching spec in plan
        order wins); every matching spec's eligibility counter still
        advances, so ``after``/``count`` schedules are independent of
        whether an earlier spec fired.
        """
        indices = self._by_kind.get(kind)
        if not indices:
            return None
        fired: Optional[FaultSpec] = None
        with self._lock:
            for index in indices:
                spec = self.plan.faults[index]
                if not spec.matches(key):
                    continue
                self._eligible[index] += 1
                if fired is not None:
                    continue
                if self._eligible[index] <= spec.after:
                    continue
                if spec.count is not None and self._injected[index] >= spec.count:
                    continue
                if spec.probability < 1.0:
                    if self._rngs[index].random() >= spec.probability:
                        continue
                self._injected[index] += 1
                fired = spec
        if fired is not None:
            self._metric.inc(kind=kind)
            get_logger().log(
                "fault_injected", kind=kind, key=key[:200], delay=fired.delay
            )
        return fired

    def fires(self, kind: str, key: str = "") -> bool:
        """True iff a fault of ``kind`` fires for this event."""
        return self.decide(kind, key) is not None

    def delay_for(self, kind: str, key: str = "") -> Optional[float]:
        """The stall seconds of a firing timing fault, else ``None``."""
        spec = self.decide(kind, key)
        return spec.delay if spec is not None else None

    def sleep(self, kind: str, key: str = "") -> bool:
        """Stall in place if a timing fault fires; True iff it did."""
        delay = self.delay_for(kind, key)
        if delay is None:
            return False
        time.sleep(delay)
        return True

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def snapshot(self) -> List[Dict[str, object]]:
        """Per-spec ``{kind, match, eligible, injected}`` counters."""
        with self._lock:
            return [
                {
                    "kind": spec.kind,
                    "match": spec.match,
                    "eligible": self._eligible[index],
                    "injected": self._injected[index],
                }
                for index, spec in enumerate(self.plan.faults)
            ]

    def injected_total(self, kind: Optional[str] = None) -> int:
        """Total injections so far (optionally for one kind)."""
        with self._lock:
            return sum(
                count
                for spec, count in zip(self.plan.faults, self._injected)
                if kind is None or spec.kind == kind
            )


class NullInjector:
    """The no-fault arm: every decision is an immediate ``None``/False.

    Shares the :class:`FaultInjector` interface so hook sites never
    branch on type; ``enabled`` is the one-attribute fast path they
    may consult before building a key string.
    """

    enabled = False
    plan = InjectionPlan()

    def decide(self, kind: str, key: str = "") -> None:
        return None

    def fires(self, kind: str, key: str = "") -> bool:
        return False

    def delay_for(self, kind: str, key: str = "") -> None:
        return None

    def sleep(self, kind: str, key: str = "") -> bool:
        return False

    def snapshot(self) -> List[Dict[str, object]]:
        return []

    def injected_total(self, kind: Optional[str] = None) -> int:
        return 0


#: Process-wide shared no-op injector (stateless, safe to share).
NULL_INJECTOR = NullInjector()

Injector = Union[FaultInjector, NullInjector]


def build_injector(
    faults: Union[None, str, InjectionPlan, FaultInjector, NullInjector],
) -> Injector:
    """Normalise the ``faults=`` argument every entry point accepts.

    ``None`` -> the shared :data:`NULL_INJECTOR`; a path string -> the
    plan is loaded from that JSON file; an :class:`InjectionPlan` ->
    a fresh injector; an injector -> passed through (so one injector
    can be shared across service, server, and client hook sites).
    """
    if faults is None:
        return NULL_INJECTOR
    if isinstance(faults, (FaultInjector, NullInjector)):
        return faults
    if isinstance(faults, InjectionPlan):
        return FaultInjector(faults)
    if isinstance(faults, str):
        return FaultInjector(InjectionPlan.load(faults))
    raise TypeError(
        "faults must be None, a plan path, an InjectionPlan, or an "
        f"injector, got {type(faults).__name__}"
    )
