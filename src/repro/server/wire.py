"""The typed v1 wire schema: every byte either front end may emit.

This module is the single source of truth for the HTTP API's shapes.
Both front ends -- the threaded :mod:`repro.server.app` and the
sharded asyncio tier of :mod:`repro.server.aio` -- build their
responses through the frozen dataclasses here, and
:class:`~repro.server.client.SwapClient` parses replies back through
the same types, so old and new servers provably speak one format.

Success replies:

* :class:`ResultReply` -- ``POST /v1/solve``, ``POST /v1/validate``
  and ``POST /v1/swap-graph``
  (``{"ok": true, "kind", "key", "cached", "result"}``);
* :class:`SweepPointReply` / :class:`SweepReply` -- ``GET /v1/sweep``
  (``{"ok": true, "count", "results": [...]}`` with one point record
  per requested ``P*``).

Every non-2xx API response carries the same JSON envelope::

    {"ok": false, "error": {"code": ..., "message": ..., "retryable": ...}}

``code``/``message``/``retryable`` are exactly
:class:`~repro.service.errors.ServiceErrorInfo` -- the service layer's
typed errors go onto the wire unchanged, plus a handful of
transport-only codes (``queue_full``, ``body_too_large``,
``no_replica``, ...). The ``retryable`` flag is authoritative for
clients: :mod:`repro.server.client` retries exactly when the status is
429/503 or the envelope says so.

The transport-error *constructors* (:func:`queue_full_error`,
:func:`body_too_large_error`, ...) exist so the two front ends shed
load with byte-identical envelopes -- the parity suite
(``tests/server/test_aio_parity.py``) holds them to it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.service.errors import ServiceError, ServiceErrorInfo

__all__ = [
    "DeadlineExceededError",
    "STATUS_BY_CODE",
    "status_for",
    "error_envelope",
    "envelope_bytes",
    "ErrorReply",
    "ResultReply",
    "SweepPointReply",
    "SweepReply",
    "not_found_error",
    "method_not_allowed_error",
    "chunked_body_error",
    "missing_length_error",
    "malformed_length_error",
    "body_too_large_error",
    "queue_full_error",
    "draining_error",
    "deadline_message",
    "no_replica_error",
    "unauthorized_error",
    "conflict_error",
    "admin_unavailable_error",
]


class DeadlineExceededError(ServiceError):
    """The request exceeded the server's per-request deadline."""

    code = "deadline_exceeded"
    retryable = True


# service-layer and transport error codes -> HTTP status
STATUS_BY_CODE: Dict[str, int] = {
    "invalid_request": 400,
    "parse_error": 400,
    "not_found": 404,
    "method_not_allowed": 405,
    "length_required": 411,
    "body_too_large": 413,
    "queue_full": 429,
    "unauthorized": 403,
    "conflict": 409,
    "admin_unavailable": 503,
    "solve_failed": 500,
    "internal_error": 500,
    "worker_crashed": 500,
    "draining": 503,
    "no_replica": 503,
    "timeout": 504,
    "deadline_exceeded": 504,
}


def status_for(info: ServiceErrorInfo) -> int:
    """The HTTP status of an error envelope (500 for unknown codes)."""
    return STATUS_BY_CODE.get(info.code, 500)


def error_envelope(info: ServiceErrorInfo) -> Dict[str, object]:
    """The JSON error envelope body for ``info``.

    Unlike the JSONL batch records (which keep the historical two-key
    error dict), HTTP envelopes carry ``retryable`` explicitly -- it is
    the client's retry signal.
    """
    return ErrorReply(error=info).to_dict()


def envelope_bytes(
    info: ServiceErrorInfo, status: Optional[int] = None
) -> Tuple[int, bytes]:
    """``(status, body)`` for an error response."""
    payload = json.dumps(error_envelope(info), separators=(",", ":"))
    return (
        status if status is not None else status_for(info),
        payload.encode("utf-8"),
    )


# ---------------------------------------------------------------------- #
# typed replies
# ---------------------------------------------------------------------- #


def _require(data: Dict[str, object], field: str, reply: str) -> object:
    if field not in data:
        raise ValueError(f"{reply} reply missing {field!r}: {sorted(data)}")
    return data[field]


@dataclass(frozen=True)
class ErrorReply:
    """The v1 error envelope (any non-2xx API response)."""

    error: ServiceErrorInfo

    def to_dict(self) -> Dict[str, object]:
        """The wire form; key order is part of the byte format."""
        return {
            "ok": False,
            "error": {
                "code": self.error.code,
                "message": self.error.message,
                "retryable": self.error.retryable,
            },
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "ErrorReply":
        error = _require(data, "error", "error")
        if not isinstance(error, dict):
            raise ValueError(f"error envelope must be an object, got {error!r}")
        return ErrorReply(error=ServiceErrorInfo.from_dict(error))


@dataclass(frozen=True)
class ResultReply:
    """One solved/validated request (``POST /v1/solve|validate``).

    ``result`` is the :func:`repro.service.serialize.encode_result`
    payload -- already JSON-safe; decode with ``decode_result``.
    """

    kind: str
    key: str
    cached: bool
    result: Dict[str, object]

    def to_dict(self) -> Dict[str, object]:
        """The wire form; key order is part of the byte format."""
        return {
            "ok": True,
            "kind": self.kind,
            "key": self.key,
            "cached": self.cached,
            "result": self.result,
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "ResultReply":
        if not data.get("ok", False):
            raise ValueError(f"not a success reply: {data!r}")
        return ResultReply(
            kind=str(_require(data, "kind", "result")),
            key=str(_require(data, "key", "result")),
            cached=bool(_require(data, "cached", "result")),
            result=_require(data, "result", "result"),  # type: ignore[arg-type]
        )

    @staticmethod
    def from_item(kind: str, item) -> "ResultReply":
        """Build from a successful :class:`~repro.service.api.BatchItem`."""
        from repro.service.serialize import encode_result

        return ResultReply(
            kind=kind,
            key=item.key,
            cached=item.cached,
            result=encode_result(item.value),
        )


@dataclass(frozen=True)
class SweepPointReply:
    """One point of a sweep: a rate (with its tier and optional bound)
    or an in-band error, never both."""

    pstar: float
    ok: bool
    key: str
    cached: bool
    source: Optional[str]
    success_rate: Optional[float] = None
    bound: Optional[float] = None
    error: Optional[ServiceErrorInfo] = None

    def to_dict(self) -> Dict[str, object]:
        """The wire form; key order is part of the byte format."""
        point: Dict[str, object] = {
            "pstar": self.pstar,
            "ok": self.ok,
            "key": self.key,
            "cached": self.cached,
            "source": self.source,
        }
        if self.ok:
            point["success_rate"] = self.success_rate
            if self.bound is not None:  # surface answers carry their bound
                point["bound"] = self.bound
        else:
            assert self.error is not None
            point["error"] = self.error.to_dict()
        return point

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "SweepPointReply":
        ok = bool(_require(data, "ok", "sweep point"))
        error = data.get("error")
        return SweepPointReply(
            pstar=float(_require(data, "pstar", "sweep point")),  # type: ignore[arg-type]
            ok=ok,
            key=str(_require(data, "key", "sweep point")),
            cached=bool(data.get("cached", False)),
            source=data.get("source"),  # type: ignore[arg-type]
            success_rate=(
                float(_require(data, "success_rate", "sweep point"))  # type: ignore[arg-type]
                if ok
                else None
            ),
            bound=(
                float(data["bound"])  # type: ignore[arg-type]
                if data.get("bound") is not None
                else None
            ),
            error=(
                ServiceErrorInfo.from_dict(error)  # type: ignore[arg-type]
                if isinstance(error, dict)
                else None
            ),
        )

    @staticmethod
    def from_item(pstar: float, item) -> "SweepPointReply":
        """Build from one sweep :class:`~repro.service.api.BatchItem`."""
        if item.ok:
            return SweepPointReply(
                pstar=pstar,
                ok=True,
                key=item.key,
                cached=item.cached,
                source=item.source,
                success_rate=item.value.success_rate,
                bound=getattr(item.value, "bound", None),
            )
        return SweepPointReply(
            pstar=pstar,
            ok=False,
            key=item.key,
            cached=item.cached,
            source=item.source,
            error=item.error,
        )


@dataclass(frozen=True)
class SweepReply:
    """The whole ``GET /v1/sweep`` response."""

    results: Tuple[SweepPointReply, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "results", tuple(self.results))

    def to_dict(self) -> Dict[str, object]:
        """The wire form; key order is part of the byte format."""
        return {
            "ok": True,
            "count": len(self.results),
            "results": [point.to_dict() for point in self.results],
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "SweepReply":
        raw = _require(data, "results", "sweep")
        if not isinstance(raw, list):
            raise ValueError(f"sweep results must be a list, got {raw!r}")
        return SweepReply(
            results=tuple(SweepPointReply.from_dict(point) for point in raw)
        )

    @staticmethod
    def from_items(
        pstars: Sequence[float], items: Sequence
    ) -> "SweepReply":
        """Build from :meth:`SwapService.sweep` output, in request order."""
        return SweepReply(
            results=tuple(
                SweepPointReply.from_item(pstar, item)
                for pstar, item in zip(pstars, items)
            )
        )


# ---------------------------------------------------------------------- #
# transport-error constructors (shared by both front ends)
# ---------------------------------------------------------------------- #


def not_found_error(path: str) -> ServiceErrorInfo:
    """404: no such route."""
    return ServiceErrorInfo(code="not_found", message=f"no route {path}")


def method_not_allowed_error(method: str, path: str) -> ServiceErrorInfo:
    """405: known path, wrong verb."""
    return ServiceErrorInfo(
        code="method_not_allowed", message=f"{method} not allowed on {path}"
    )


def chunked_body_error() -> ServiceErrorInfo:
    """411: chunked transfer encoding is not accepted."""
    return ServiceErrorInfo(
        code="length_required",
        message="chunked bodies are not accepted; send Content-Length",
    )


def missing_length_error() -> ServiceErrorInfo:
    """411: POST without a Content-Length header."""
    return ServiceErrorInfo(
        code="length_required", message="Content-Length required"
    )


def malformed_length_error(raw: str) -> ServiceErrorInfo:
    """411: Content-Length present but not an integer."""
    return ServiceErrorInfo(
        code="length_required", message=f"malformed Content-Length {raw!r}"
    )


def body_too_large_error(length: int, limit: int) -> ServiceErrorInfo:
    """413: declared body size over the configured ceiling."""
    return ServiceErrorInfo(
        code="body_too_large",
        message=f"body of {length} bytes exceeds limit {limit}",
    )


def queue_full_error(depth: int) -> ServiceErrorInfo:
    """429: the bounded admission gate is full."""
    return ServiceErrorInfo(
        code="queue_full",
        message=f"admission queue full (depth {depth}); retry later",
        retryable=True,
    )


def draining_error() -> ServiceErrorInfo:
    """503: the server is draining for shutdown."""
    return ServiceErrorInfo(
        code="draining",
        message="server is draining; retry elsewhere",
        retryable=True,
    )


def deadline_message(deadline: float) -> str:
    """The one :class:`DeadlineExceededError` message both tiers raise."""
    return f"request exceeded the {deadline:g}s deadline"


def no_replica_error(attempts: int) -> ServiceErrorInfo:
    """503: every replica on the ring refused or failed."""
    return ServiceErrorInfo(
        code="no_replica",
        message=f"no replica answered after {attempts} attempts; retry later",
        retryable=True,
    )


def unauthorized_error(message: str) -> ServiceErrorInfo:
    """403: the admin surface refused the caller's credentials."""
    return ServiceErrorInfo(code="unauthorized", message=message)


def conflict_error(message: str) -> ServiceErrorInfo:
    """409: the admin operation races another in-flight change."""
    return ServiceErrorInfo(code="conflict", message=message)


def admin_unavailable_error() -> ServiceErrorInfo:
    """503: the admin surface is partitioned away (chaos plans)."""
    return ServiceErrorInfo(
        code="admin_unavailable",
        message="admin surface unreachable; retry later",
        retryable=True,
    )
