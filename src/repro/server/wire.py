"""HTTP wire conventions: error envelopes and status mapping.

Every non-2xx API response carries the same JSON envelope::

    {"ok": false, "error": {"code": ..., "message": ..., "retryable": ...}}

``code``/``message``/``retryable`` are exactly
:class:`~repro.service.errors.ServiceErrorInfo` -- the service layer's
typed errors go onto the wire unchanged, plus a handful of
transport-only codes (``queue_full``, ``body_too_large``, ...). The
``retryable`` flag is authoritative for clients:
:mod:`repro.server.client` retries exactly when the status is 429/503
or the envelope says so.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Tuple

from repro.service.errors import ServiceError, ServiceErrorInfo

__all__ = [
    "DeadlineExceededError",
    "STATUS_BY_CODE",
    "status_for",
    "error_envelope",
    "envelope_bytes",
]


class DeadlineExceededError(ServiceError):
    """The request exceeded the server's per-request deadline."""

    code = "deadline_exceeded"
    retryable = True


# service-layer and transport error codes -> HTTP status
STATUS_BY_CODE: Dict[str, int] = {
    "invalid_request": 400,
    "parse_error": 400,
    "not_found": 404,
    "method_not_allowed": 405,
    "length_required": 411,
    "body_too_large": 413,
    "queue_full": 429,
    "solve_failed": 500,
    "internal_error": 500,
    "worker_crashed": 500,
    "draining": 503,
    "timeout": 504,
    "deadline_exceeded": 504,
}


def status_for(info: ServiceErrorInfo) -> int:
    """The HTTP status of an error envelope (500 for unknown codes)."""
    return STATUS_BY_CODE.get(info.code, 500)


def error_envelope(info: ServiceErrorInfo) -> Dict[str, object]:
    """The JSON error envelope body for ``info``.

    Unlike the JSONL batch records (which keep the historical two-key
    error dict), HTTP envelopes carry ``retryable`` explicitly -- it is
    the client's retry signal.
    """
    return {
        "ok": False,
        "error": {
            "code": info.code,
            "message": info.message,
            "retryable": info.retryable,
        },
    }


def envelope_bytes(
    info: ServiceErrorInfo, status: Optional[int] = None
) -> Tuple[int, bytes]:
    """``(status, body)`` for an error response."""
    payload = json.dumps(error_envelope(info), separators=(",", ":"))
    return (
        status if status is not None else status_for(info),
        payload.encode("utf-8"),
    )
