"""A retrying HTTP client for the serving layer (stdlib ``urllib``).

:class:`SwapClient` speaks the wire format of :mod:`repro.server.app`
and embeds the retry discipline the server's error envelopes are
designed for: capped exponential backoff with **full jitter**
(``delay ~ U(0, min(cap, base * 2**attempt))``), honouring
``Retry-After``, retrying *only* what the server marks transient --

* HTTP ``429`` (queue full) and ``503`` (draining),
* any error envelope with ``retryable: true`` (pool timeouts, worker
  crashes, request deadlines),
* connection-level failures (refused/reset), which are
  indistinguishable from a restarting server.

Deterministic rejections (``400``, ``404``, ``413``, non-retryable
``500``) surface immediately as :class:`ServerReplyError`. When the
retry budget runs out, :class:`RetriesExhaustedError` carries the last
failure. ``sleep`` and ``rng`` are injectable so tests exercise the
full backoff schedule in microseconds.

Retries defend against *transient* trouble; an optional
:class:`~repro.server.circuit.CircuitBreaker` (``circuit=``) defends
against *sustained* trouble: once consecutive logical requests keep
exhausting their retry budget, the breaker opens and further calls
fail locally with :class:`CircuitOpenError` (retryable -- the breaker
half-opens after its reset timeout and probes the server back in).
A ``faults=`` injector adds deterministic client-side chaos
(``http_drop``/``http_slow``) for tests of exactly that machinery.

The client is also **replica-set aware** for the sharded tier
(``serve --replicas N``): give it a static ``replicas=[url, ...]``
list, or point ``base_url`` at the router and pass ``discover=True``
to read the replica topology from the router's ``/readyz`` document.
In replicated mode each replica gets its *own* circuit breaker, retries
rotate across healthy replicas (fail-over is the retry), and an
optional :class:`HedgePolicy` launches a second attempt against a
different replica once the first has been in flight longer than the
client's own observed p95 latency -- the classic tail-tolerance
trade: a few percent duplicate work for a collapsed p99. Ops probes
(``/healthz``, ``/readyz``, ``/metrics``, ``/version``) always go to
``base_url`` itself (the router), never to a replica.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.error
import urllib.request
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor
from concurrent.futures import wait as _futures_wait
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple
from urllib.parse import quote

from repro.faults.injector import build_injector
from repro.server.circuit import CircuitBreaker
from repro.server.wire import ResultReply, SweepReply
from repro.service.serialize import decode_result

__all__ = [
    "ClientError",
    "ServerReplyError",
    "RetriesExhaustedError",
    "CircuitOpenError",
    "RetryPolicy",
    "HedgePolicy",
    "SwapClient",
]

# the idempotent single-shot routes a hedge may duplicate safely;
# /v1/batch is excluded (duplicating a whole batch doubles real work)
# and /v1/swap-graph too: a lattice solve can run whole seconds of CPU,
# so duplicating it burns a replica core for no tail-latency win
_HEDGEABLE_PATHS = ("/v1/solve", "/v1/validate", "/v1/sweep")


class ClientError(Exception):
    """Base class of every client-side failure."""


class ServerReplyError(ClientError):
    """The server answered with a non-retryable (or final) error."""

    def __init__(self, status: int, error: Dict[str, object]) -> None:
        code = error.get("code", "unknown")
        message = error.get("message", "")
        super().__init__(f"HTTP {status} {code}: {message}")
        self.status = status
        self.error = error
        self.retry_after: Optional[float] = None

    @property
    def retryable(self) -> bool:
        """Whether the server marked this failure safe to resubmit."""
        return self.status in (429, 503) or bool(self.error.get("retryable"))


class RetriesExhaustedError(ClientError):
    """Every attempt failed with a retryable error."""

    def __init__(self, attempts: int, last: Exception) -> None:
        super().__init__(f"gave up after {attempts} attempts: {last}")
        self.attempts = attempts
        self.last = last


class CircuitOpenError(ClientError):
    """The circuit breaker is open: refused locally, nothing was sent.

    Retryable in spirit -- the breaker half-opens after its reset
    timeout, so a later call may go through.
    """

    def __init__(self, state: str) -> None:
        super().__init__(
            f"circuit breaker is {state}; request refused without contacting "
            f"the server"
        )
        self.state = state


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with full jitter.

    ``max_attempts`` counts every try including the first; the delay
    before retry ``k`` (0-based) is drawn uniformly from
    ``[0, min(max_delay, base_delay * 2**k)]``, stretched to at least
    the server's ``Retry-After`` hint when one was given (still capped
    at ``max_delay``).
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay <= 0 or self.max_delay <= 0:
            raise ValueError("delays must be > 0")

    def delay(
        self,
        attempt: int,
        rng: random.Random,
        retry_after: Optional[float] = None,
    ) -> float:
        """The sleep before retry number ``attempt`` (0-based)."""
        cap = min(self.max_delay, self.base_delay * (2.0 ** attempt))
        jittered = rng.uniform(0.0, cap)
        if retry_after is not None:
            jittered = max(jittered, min(retry_after, self.max_delay))
        return jittered


@dataclass(frozen=True)
class HedgePolicy:
    """When and how to hedge a slow request onto a second replica.

    The hedge fires once the primary attempt has been in flight longer
    than the client's own observed ``quantile`` latency (times
    ``multiplier``), measured over a sliding window of recent
    successful requests -- the delay *adapts* to whatever the serving
    stack currently delivers instead of hard-coding a guess. Until
    ``warmup`` samples exist the fixed ``initial_delay`` is used.
    Whichever arm answers first wins (``repro_hedge_wins_total``); the
    loser finishes in the background and still feeds its replica's
    breaker.
    """

    quantile: float = 0.95
    multiplier: float = 1.0
    initial_delay: float = 0.05
    min_delay: float = 0.001
    max_delay: float = 2.0
    window: int = 128
    warmup: int = 16

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {self.quantile}")
        if self.multiplier <= 0:
            raise ValueError(f"multiplier must be > 0, got {self.multiplier}")
        if self.window < 2 or self.warmup < 1:
            raise ValueError("window must be >= 2 and warmup >= 1")

    def delay_from(self, samples: Sequence[float]) -> float:
        """The hedge delay given recent latency ``samples`` (seconds)."""
        if len(samples) < self.warmup:
            return self.initial_delay
        ordered = sorted(samples)
        index = int(self.quantile * (len(ordered) - 1))
        derived = ordered[index] * self.multiplier
        return min(self.max_delay, max(self.min_delay, derived))


class _Endpoint:
    """One replica the client may talk to: URL + its own breaker."""

    def __init__(self, url: str, name: Optional[str] = None) -> None:
        self.url = url.rstrip("/")
        self.name = name if name is not None else self.url
        # per-replica breakers publish nowhere: the unlabelled client
        # gauge belongs to the single-endpoint breaker, and the router
        # already exports the authoritative per-replica states
        self.breaker = CircuitBreaker(
            failure_threshold=3,
            reset_timeout=5.0,
            on_state=lambda _value: None,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Endpoint({self.name!r}, {self.url!r})"


class SwapClient:
    """Typed access to a running :class:`~repro.server.app.SwapServer`.

    Parameters
    ----------
    base_url:
        e.g. ``http://127.0.0.1:8100`` (trailing slash tolerated).
    timeout:
        Per-attempt socket timeout in seconds.
    retry:
        The :class:`RetryPolicy`; ``RetryPolicy(max_attempts=1)``
        disables retries entirely.
    sleep, rng:
        Injection points for tests (defaults: ``time.sleep`` and a
        process-seeded :class:`random.Random`).
    circuit:
        Optional :class:`~repro.server.circuit.CircuitBreaker`; when
        given, logical requests consult it before touching the network
        and report their outcome to it (``None``: no breaker, the
        pre-existing behaviour).
    faults:
        Optional chaos hook (plan path, plan, or injector); honours
        client-side ``http_drop`` and ``http_slow`` specs keyed by the
        URL path.
    replicas:
        Optional static replica base-URL list. When given, ``/v1/*``
        requests rotate across the replicas (each with its own circuit
        breaker) and ``base_url`` serves only the ops routes.
    discover:
        When True, read the replica topology from ``base_url``'s
        ``/readyz`` document (the sharded router publishes one); a
        plain threaded server publishes none and the client stays
        single-endpoint. The topology is re-read automatically --
        every ``discover_interval`` seconds, and immediately (throttled)
        when every replica breaker refuses or a transport failure
        suggests the fleet moved -- and reinstalled only when the
        router's topology *epoch* actually changed, so a live reshard
        reaches the client without a restart. Re-run manually via
        :meth:`discover_replicas`.
    discover_interval:
        Seconds between periodic topology refreshes (``None``: only
        the failure-triggered refreshes run).
    hedge:
        Optional :class:`HedgePolicy`; needs >= 2 replicas to act.
    admin_token:
        Bearer token for the router's ``/admin/v1/*`` control surface
        (:meth:`admin_topology` / :meth:`admin_add` /
        :meth:`admin_remove`).
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retry: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
        rng: Optional[random.Random] = None,
        circuit=None,
        faults=None,
        replicas: Optional[Sequence[str]] = None,
        discover: bool = False,
        discover_interval: Optional[float] = None,
        hedge: Optional[HedgePolicy] = None,
        admin_token: Optional[str] = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)
        self.retry = retry if retry is not None else RetryPolicy()
        self.circuit = circuit
        self.faults = build_injector(faults)
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()
        self.hedge = hedge
        self.admin_token = admin_token
        self._hedge_metrics = None
        self._latencies: deque = deque(
            maxlen=hedge.window if hedge is not None else 128
        )
        self._endpoints: List[_Endpoint] = []
        self._rotation = 0
        self._pool: Optional[ThreadPoolExecutor] = None
        self._discover = bool(discover)
        self._discover_interval = (
            float(discover_interval) if discover_interval is not None else None
        )
        self._topology_epoch: Optional[int] = None
        self._last_discovery = 0.0
        if replicas is not None:
            self.set_replicas(replicas)
        if discover:
            self.discover_replicas()

    # ------------------------------------------------------------------ #
    # replica topology
    # ------------------------------------------------------------------ #

    @property
    def replica_urls(self) -> List[str]:
        """The replica base URLs currently rotated over (may be [])."""
        return [endpoint.url for endpoint in self._endpoints]

    def set_replicas(
        self,
        urls: Sequence[str],
        names: Optional[Sequence[str]] = None,
    ) -> None:
        """Install a replica set; replaces any previous one.

        Breakers of URLs already in the set are kept (their failure
        history survives a topology refresh).
        """
        known = {endpoint.url: endpoint for endpoint in self._endpoints}
        fresh: List[_Endpoint] = []
        for index, url in enumerate(urls):
            name = names[index] if names is not None else None
            cleaned = url.rstrip("/")
            if cleaned in known:
                fresh.append(known[cleaned])
            else:
                fresh.append(_Endpoint(cleaned, name))
        self._endpoints = fresh

    def discover_replicas(self) -> List[str]:
        """Refresh the replica set from ``base_url``'s ``/readyz``.

        Returns the discovered URLs; an empty list (a server that
        publishes no topology) leaves the client single-endpoint. The
        document's topology ``epoch`` is remembered: a refresh that
        comes back with the epoch already installed changes nothing
        (surviving breakers keep their failure history either way).
        """
        self._last_discovery = time.monotonic()
        document = self._json("GET", "/readyz")
        entries = document.get("replicas")
        if not isinstance(entries, list):
            return []
        epoch = document.get("epoch")
        urls = [
            str(entry["url"])
            for entry in entries
            if isinstance(entry, dict) and "url" in entry
        ]
        names = [
            str(entry.get("name", entry["url"]))
            for entry in entries
            if isinstance(entry, dict) and "url" in entry
        ]
        if urls and (
            not isinstance(epoch, int)
            or epoch != self._topology_epoch
            or not self._endpoints
        ):
            self.set_replicas(urls, names)
        if isinstance(epoch, int):
            self._topology_epoch = epoch
        return urls

    @property
    def topology_epoch(self) -> Optional[int]:
        """The router topology epoch last seen by discovery."""
        return self._topology_epoch

    def _maybe_rediscover(self, force: bool = False) -> None:
        """Opportunistic topology refresh; never raises.

        ``force`` is the failure path (all breakers refusing, or a
        transport error that smells like a moved fleet) and is
        throttled to twice a second so a hard outage cannot turn into
        a /readyz stampede.
        """
        if not self._discover:
            return
        now = time.monotonic()
        since = now - self._last_discovery
        due = force and since >= 0.5
        if not due and self._discover_interval is not None:
            due = since >= self._discover_interval
        if not due:
            return
        try:
            self.discover_replicas()
        except ClientError:
            pass  # the router itself is unreachable; retries handle it

    # ------------------------------------------------------------------ #
    # transport with retry
    # ------------------------------------------------------------------ #

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        content_type: str = "application/json",
        attempts: Optional[int] = None,
    ) -> Tuple[int, bytes]:
        """One logical request, retried per the policy; ``(status, body)``.

        With a circuit breaker attached, the whole logical request is
        one breaker event: refused locally while open, a success or a
        deterministic server reply closes it (the transport worked),
        and an exhausted retry budget or open-circuit refusal counts
        as one failure.

        With a replica set installed, ``/v1/*`` requests take the
        replicated path instead (per-replica breakers, fail-over
        rotation, optional hedging); ops routes stay on ``base_url``.
        """
        if self._endpoints and path.startswith("/v1/"):
            return self._request_replicated(
                method, path, body, content_type, attempts
            )
        if self.circuit is None:
            return self._attempts(method, path, body, content_type, attempts)
        if not self.circuit.allow():
            raise CircuitOpenError(self.circuit.state)
        try:
            outcome = self._attempts(method, path, body, content_type, attempts)
        except ServerReplyError:
            # the server answered conclusively: transport is healthy
            self.circuit.record_success()
            raise
        except ClientError:
            self.circuit.record_failure()
            raise
        self.circuit.record_success()
        return outcome

    def _attempts(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        content_type: str,
        attempts: Optional[int],
    ) -> Tuple[int, bytes]:
        """The retry loop itself (circuit-unaware, single endpoint)."""
        budget = attempts if attempts is not None else self.retry.max_attempts
        last: Exception = ClientError("no attempt made")
        for attempt in range(budget):
            retry_after: Optional[float] = None
            try:
                return self._one_try(
                    self.base_url, method, path, body, content_type
                )
            except ServerReplyError as reply:
                if not reply.retryable:
                    raise
                retry_after = reply.retry_after
                last = reply
            except ClientError as exc:
                last = exc
            if attempt + 1 < budget:
                self._sleep(self.retry.delay(attempt, self._rng, retry_after))
        raise RetriesExhaustedError(budget, last)

    def _one_try(
        self,
        base_url: str,
        method: str,
        path: str,
        body: Optional[bytes],
        content_type: str,
    ) -> Tuple[int, bytes]:
        """Exactly one HTTP exchange against one endpoint.

        Success returns ``(status, body)`` and records the latency
        sample hedging feeds on. Failures are normalised: any HTTP
        error raises :class:`ServerReplyError` (with ``retry_after``
        attached), any transport failure raises a bare
        :class:`ClientError`.
        """
        request = urllib.request.Request(
            base_url + path, data=body, method=method
        )
        if body is not None:
            request.add_header("Content-Type", content_type)
        if self.admin_token is not None and path.startswith("/admin/"):
            request.add_header("Authorization", f"Bearer {self.admin_token}")
        started = time.perf_counter()
        try:
            if self.faults.enabled:
                if self.faults.fires("http_drop", key=path):
                    raise urllib.error.URLError("injected connection drop")
                self.faults.sleep("http_slow", key=path)
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                outcome = response.status, response.read()
            self._latencies.append(time.perf_counter() - started)
            return outcome
        except urllib.error.HTTPError as exc:
            payload = exc.read()
            reply = ServerReplyError(exc.code, _envelope_error(payload))
            reply.retry_after = _parse_retry_after(
                exc.headers.get("Retry-After")
            )
            raise reply from None
        except urllib.error.URLError as exc:
            # connection refused/reset/dropped: the server may be
            # restarting (or the injector is pretending it is)
            raise ClientError(f"connection failed: {exc.reason}") from None
        except (http.client.HTTPException, OSError) as exc:
            # a connection dropped mid-exchange escapes urllib
            # unwrapped (e.g. RemoteDisconnected): same treatment
            raise ClientError(
                f"connection failed: {exc.__class__.__name__}: {exc}"
            ) from None

    # ------------------------------------------------------------------ #
    # the replicated path: fail-over rotation + hedging
    # ------------------------------------------------------------------ #

    def _request_replicated(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        content_type: str,
        attempts: Optional[int],
    ) -> Tuple[int, bytes]:
        """The retry loop over a replica set.

        Each attempt goes to the next replica whose breaker admits it
        -- fail-over *is* the retry. A deterministic server reply
        surfaces immediately (and counts as breaker success: the
        transport worked); transport failures and exhausted hedges
        debit the replica they hit.
        """
        budget = attempts if attempts is not None else self.retry.max_attempts
        last: Exception = ClientError("no attempt made")
        self._maybe_rediscover()
        for attempt in range(budget):
            endpoint = self._next_endpoint()
            if endpoint is None:
                # every breaker refuses: the topology may have moved
                # out from under us -- re-read it before giving up
                self._maybe_rediscover(force=True)
                endpoint = self._next_endpoint()
            if endpoint is None:
                raise CircuitOpenError("open")
            backup = (
                self._next_endpoint(exclude=endpoint)
                if self._should_hedge(path)
                else None
            )
            retry_after: Optional[float] = None
            try:
                if backup is not None:
                    # the hedged exchange does its own breaker accounting
                    # (two arms, two breakers) -- don't double-record here
                    return self._hedged_try(
                        endpoint, backup, method, path, body, content_type
                    )
                outcome = self._one_try(
                    endpoint.url, method, path, body, content_type
                )
                endpoint.breaker.record_success()
                return outcome
            except ServerReplyError as reply:
                if backup is None:
                    endpoint.breaker.record_success()
                if not reply.retryable:
                    raise
                retry_after = reply.retry_after
                last = reply
            except ClientError as exc:
                if backup is None:
                    endpoint.breaker.record_failure()
                last = exc
                # a dropped connection on the replicated path often
                # means the replica was restarted or removed
                self._maybe_rediscover(force=True)
            if attempt + 1 < budget:
                self._sleep(self.retry.delay(attempt, self._rng, retry_after))
        raise RetriesExhaustedError(budget, last)

    def _next_endpoint(
        self, exclude: Optional[_Endpoint] = None
    ) -> Optional[_Endpoint]:
        """The next replica (rotation order) whose breaker admits a
        call; ``None`` when every breaker refuses."""
        for _step in range(len(self._endpoints)):
            endpoint = self._endpoints[self._rotation % len(self._endpoints)]
            self._rotation += 1
            if endpoint is exclude:
                continue
            if endpoint.breaker.allow():
                return endpoint
        return None

    def _should_hedge(self, path: str) -> bool:
        return (
            self.hedge is not None
            and len(self._endpoints) >= 2
            and path.split("?", 1)[0] in _HEDGEABLE_PATHS
        )

    def _hedged_try(
        self,
        primary: _Endpoint,
        backup: _Endpoint,
        method: str,
        path: str,
        body: Optional[bytes],
        content_type: str,
    ) -> Tuple[int, bytes]:
        """One hedged exchange: primary first, backup after the delay.

        First answer wins; the loser finishes in the background and
        still reports to its replica's breaker. Raises the *last*
        failure only when both arms fail.
        """
        if self._hedge_metrics is None:
            from repro.server.metrics import HedgeMetrics

            self._hedge_metrics = HedgeMetrics()
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=4, thread_name_prefix="repro-hedge"
            )
        arms = {}
        future = self._pool.submit(
            self._one_try, primary.url, method, path, body, content_type
        )
        arms[future] = ("primary", primary)
        done, _pending = _futures_wait(
            arms, timeout=self.hedge.delay_from(tuple(self._latencies))
        )
        if not done:
            # the primary is officially slow: launch the hedge arm
            self._hedge_metrics.requests.inc()
            hedge_future = self._pool.submit(
                self._one_try, backup.url, method, path, body, content_type
            )
            arms[hedge_future] = ("hedge", backup)
        hedged = len(arms) > 1
        failure: Optional[Exception] = None
        while arms:
            done, _pending = _futures_wait(
                arms, return_when=FIRST_COMPLETED
            )
            for future in done:
                arm, endpoint = arms.pop(future)
                try:
                    outcome = future.result()
                except ServerReplyError as reply:
                    endpoint.breaker.record_success()
                    if not reply.retryable:
                        self._absorb_losers(arms)
                        raise
                    failure = reply
                    continue
                except ClientError as exc:
                    endpoint.breaker.record_failure()
                    failure = exc
                    continue
                endpoint.breaker.record_success()
                if hedged:
                    self._hedge_metrics.wins.inc(arm=arm)
                self._absorb_losers(arms)
                return outcome
        assert failure is not None
        raise failure

    def _absorb_losers(self, arms: dict) -> None:
        """Let losing arms finish in the background, feeding breakers."""
        for future, (_arm, endpoint) in arms.items():
            future.add_done_callback(self._absorber(endpoint))
        arms.clear()

    @staticmethod
    def _absorber(endpoint: _Endpoint) -> Callable:
        def _done(future) -> None:
            exc = future.exception()
            if exc is None or isinstance(exc, ServerReplyError):
                endpoint.breaker.record_success()
            else:
                endpoint.breaker.record_failure()

        return _done

    def _json(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        body = (
            json.dumps(payload, separators=(",", ":")).encode("utf-8")
            if payload is not None
            else None
        )
        _status, raw = self._request(method, path, body)
        return json.loads(raw.decode("utf-8"))

    # ------------------------------------------------------------------ #
    # API surface
    # ------------------------------------------------------------------ #

    def solve(
        self,
        pstar: float = 2.0,
        collateral: float = 0.0,
        params: Optional[dict] = None,
        law: Optional[str] = None,
    ):
        """``POST /v1/solve``; returns the decoded equilibrium object.

        ``law`` is the CLI shorthand (``"merton:jump_intensity=0.05"``)
        or a ``{"kind", "params"}`` dict; it is merged into ``params``
        (an explicit ``params["law"]`` wins).
        """
        payload: dict = {"kind": "solve", "pstar": pstar, "collateral": collateral}
        params = _merge_law(params, law)
        if params is not None:
            payload["params"] = params
        reply = ResultReply.from_dict(self._json("POST", "/v1/solve", payload))
        return decode_result(reply.result)

    def validate(
        self,
        pstar: float = 2.0,
        collateral: float = 0.0,
        n_paths: int = 20_000,
        seed: Optional[int] = None,
        params: Optional[dict] = None,
        law: Optional[str] = None,
    ):
        """``POST /v1/validate``; returns the decoded validation result.

        ``law`` follows the same shorthand-merge convention as
        :meth:`solve`.
        """
        payload: dict = {
            "kind": "validate",
            "pstar": pstar,
            "collateral": collateral,
            "n_paths": n_paths,
        }
        if seed is not None:
            payload["seed"] = seed
        params = _merge_law(params, law)
        if params is not None:
            payload["params"] = params
        reply = ResultReply.from_dict(
            self._json("POST", "/v1/validate", payload)
        )
        return decode_result(reply.result)

    def swap_graph(
        self,
        spec: dict,
        n_lattice: Optional[int] = None,
        replay: bool = False,
        replay_paths: int = 400,
        seed: Optional[int] = None,
    ):
        """``POST /v1/swap-graph``; returns the decoded
        :class:`~repro.swapgraph.result.SwapGraphResult`.

        ``spec`` is the :meth:`SwapGraphSpec.to_dict` form (build one
        with ``SwapGraphSpec.cycle(3).to_dict()`` or hand-written
        JSON); pass ``replay=True`` to also replay the equilibrium on
        simulated chains server-side.
        """
        payload: dict = {"kind": "swap_graph", "spec": spec}
        if n_lattice is not None:
            payload["n_lattice"] = n_lattice
        if replay:
            payload["replay"] = True
            payload["replay_paths"] = replay_paths
        if seed is not None:
            payload["seed"] = seed
        reply = ResultReply.from_dict(
            self._json("POST", "/v1/swap-graph", payload)
        )
        return decode_result(reply.result)

    def batch(self, requests: Sequence[dict]) -> List[dict]:
        """``POST /v1/batch``: JSONL in, one record dict per request out."""
        body = "".join(
            json.dumps(request, separators=(",", ":")) + "\n"
            for request in requests
        ).encode("utf-8")
        _status, raw = self._request(
            "POST", "/v1/batch", body, content_type="application/x-ndjson"
        )
        return [
            json.loads(line)
            for line in raw.decode("utf-8").splitlines()
            if line.strip()
        ]

    def sweep(
        self,
        pstars: Sequence[float],
        collateral: float = 0.0,
        tolerance: Optional[float] = None,
        law: Optional[str] = None,
    ) -> List[dict]:
        """``GET /v1/sweep``; one ``{pstar, success_rate, ...}`` per point.

        ``tolerance`` opts the sweep into the server's surface tier:
        points certified within it come back with ``source="surface"``
        and their ``bound``; ``tolerance=0.0`` demands exact answers.
        ``law`` sweeps under a non-default price law (CLI shorthand,
        e.g. ``"merton:jump_intensity=0.05"``).
        """
        query = ",".join(repr(float(p)) for p in pstars)
        url = f"/v1/sweep?pstars={query}&collateral={collateral!r}"
        if tolerance is not None:
            url += f"&tolerance={tolerance!r}"
        if law is not None:
            url += f"&law={quote(law, safe='')}"
        reply = SweepReply.from_dict(self._json("GET", url))
        # callers get plain dicts (the wire form); the round-trip through
        # the typed schema is the client-side conformance check
        return [point.to_dict() for point in reply.results]

    # ------------------------------------------------------------------ #
    # operational endpoints
    # ------------------------------------------------------------------ #

    def health(self) -> bool:
        """Liveness: True iff ``/healthz`` answers 200."""
        return self._probe("/healthz")

    def ready(self) -> bool:
        """Readiness: True iff ``/readyz`` answers 200 (False: draining)."""
        return self._probe("/readyz")

    def _probe(self, path: str) -> bool:
        # probes answer NOW, never retry: a draining server's 503 must
        # come back as an immediate False, not a slept-through backoff
        try:
            status, _body = self._request("GET", path, attempts=1)
        except ClientError:
            return False
        return status == 200

    def version(self) -> dict:
        """The server's ``/version`` document."""
        return self._json("GET", "/version")

    def server_info(self) -> dict:
        """What this replica is serving: package version, key-schema
        version, and the loaded surface artifact (version, axes,
        checksum) or ``None`` -- the ``/version`` document, shaped for
        operator tooling."""
        document = self.version()
        return {
            "server": document.get("server"),
            "version": document.get("version"),
            "key_version": document.get("key_version"),
            "surface": document.get("surface"),
            "laws": document.get("laws"),
        }

    def metrics(self) -> str:
        """The live Prometheus text exposition from ``/metrics``."""
        _status, raw = self._request("GET", "/metrics")
        return raw.decode("utf-8")

    # ------------------------------------------------------------------ #
    # the router's admin control surface (needs ``admin_token``)
    # ------------------------------------------------------------------ #

    def admin_topology(self) -> dict:
        """``GET /admin/v1/topology``: ring, replicas, admission state."""
        return self._json("GET", "/admin/v1/topology")

    def admin_add(
        self, url: Optional[str] = None, name: Optional[str] = None
    ) -> dict:
        """``POST /admin/v1/replicas`` (add): grow the fleet live.

        Without ``url`` the router spawns and supervises a fresh
        replica subprocess; with one it adopts an externally managed
        endpoint (routed to, never supervised).
        """
        payload: dict = {"action": "add"}
        if url is not None:
            payload["url"] = url
        if name is not None:
            payload["name"] = name
        return self._json("POST", "/admin/v1/replicas", payload)

    def admin_remove(self, name: str) -> dict:
        """``POST /admin/v1/replicas`` (remove): two-phase drain, then
        stop. The reply says whether in-flight work drained in time."""
        return self._json(
            "POST", "/admin/v1/replicas", {"action": "remove", "name": name}
        )


def _merge_law(params: Optional[dict], law: Optional[str]) -> Optional[dict]:
    """Fold a ``law`` shorthand into a wire params dict (explicit wins)."""
    if law is None:
        return params
    merged = dict(params) if params is not None else {}
    merged.setdefault("law", law)
    return merged


def _envelope_error(payload: bytes) -> Dict[str, object]:
    """The ``error`` object of an envelope body (tolerant of junk)."""
    try:
        data = json.loads(payload.decode("utf-8"))
        error = data.get("error")
        if isinstance(error, dict):
            return error
    except (UnicodeDecodeError, ValueError):
        pass
    return {"code": "unknown", "message": payload[:200].decode("utf-8", "replace")}


def _parse_retry_after(value: Optional[str]) -> Optional[float]:
    if value is None:
        return None
    try:
        return max(0.0, float(value))
    except ValueError:
        return None
