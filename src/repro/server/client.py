"""A retrying HTTP client for the serving layer (stdlib ``urllib``).

:class:`SwapClient` speaks the wire format of :mod:`repro.server.app`
and embeds the retry discipline the server's error envelopes are
designed for: capped exponential backoff with **full jitter**
(``delay ~ U(0, min(cap, base * 2**attempt))``), honouring
``Retry-After``, retrying *only* what the server marks transient --

* HTTP ``429`` (queue full) and ``503`` (draining),
* any error envelope with ``retryable: true`` (pool timeouts, worker
  crashes, request deadlines),
* connection-level failures (refused/reset), which are
  indistinguishable from a restarting server.

Deterministic rejections (``400``, ``404``, ``413``, non-retryable
``500``) surface immediately as :class:`ServerReplyError`. When the
retry budget runs out, :class:`RetriesExhaustedError` carries the last
failure. ``sleep`` and ``rng`` are injectable so tests exercise the
full backoff schedule in microseconds.

Retries defend against *transient* trouble; an optional
:class:`~repro.server.circuit.CircuitBreaker` (``circuit=``) defends
against *sustained* trouble: once consecutive logical requests keep
exhausting their retry budget, the breaker opens and further calls
fail locally with :class:`CircuitOpenError` (retryable -- the breaker
half-opens after its reset timeout and probes the server back in).
A ``faults=`` injector adds deterministic client-side chaos
(``http_drop``/``http_slow``) for tests of exactly that machinery.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.faults.injector import build_injector
from repro.service.serialize import decode_result

__all__ = [
    "ClientError",
    "ServerReplyError",
    "RetriesExhaustedError",
    "CircuitOpenError",
    "RetryPolicy",
    "SwapClient",
]


class ClientError(Exception):
    """Base class of every client-side failure."""


class ServerReplyError(ClientError):
    """The server answered with a non-retryable (or final) error."""

    def __init__(self, status: int, error: Dict[str, object]) -> None:
        code = error.get("code", "unknown")
        message = error.get("message", "")
        super().__init__(f"HTTP {status} {code}: {message}")
        self.status = status
        self.error = error

    @property
    def retryable(self) -> bool:
        """Whether the server marked this failure safe to resubmit."""
        return self.status in (429, 503) or bool(self.error.get("retryable"))


class RetriesExhaustedError(ClientError):
    """Every attempt failed with a retryable error."""

    def __init__(self, attempts: int, last: Exception) -> None:
        super().__init__(f"gave up after {attempts} attempts: {last}")
        self.attempts = attempts
        self.last = last


class CircuitOpenError(ClientError):
    """The circuit breaker is open: refused locally, nothing was sent.

    Retryable in spirit -- the breaker half-opens after its reset
    timeout, so a later call may go through.
    """

    def __init__(self, state: str) -> None:
        super().__init__(
            f"circuit breaker is {state}; request refused without contacting "
            f"the server"
        )
        self.state = state


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with full jitter.

    ``max_attempts`` counts every try including the first; the delay
    before retry ``k`` (0-based) is drawn uniformly from
    ``[0, min(max_delay, base_delay * 2**k)]``, stretched to at least
    the server's ``Retry-After`` hint when one was given (still capped
    at ``max_delay``).
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay <= 0 or self.max_delay <= 0:
            raise ValueError("delays must be > 0")

    def delay(
        self,
        attempt: int,
        rng: random.Random,
        retry_after: Optional[float] = None,
    ) -> float:
        """The sleep before retry number ``attempt`` (0-based)."""
        cap = min(self.max_delay, self.base_delay * (2.0 ** attempt))
        jittered = rng.uniform(0.0, cap)
        if retry_after is not None:
            jittered = max(jittered, min(retry_after, self.max_delay))
        return jittered


class SwapClient:
    """Typed access to a running :class:`~repro.server.app.SwapServer`.

    Parameters
    ----------
    base_url:
        e.g. ``http://127.0.0.1:8100`` (trailing slash tolerated).
    timeout:
        Per-attempt socket timeout in seconds.
    retry:
        The :class:`RetryPolicy`; ``RetryPolicy(max_attempts=1)``
        disables retries entirely.
    sleep, rng:
        Injection points for tests (defaults: ``time.sleep`` and a
        process-seeded :class:`random.Random`).
    circuit:
        Optional :class:`~repro.server.circuit.CircuitBreaker`; when
        given, logical requests consult it before touching the network
        and report their outcome to it (``None``: no breaker, the
        pre-existing behaviour).
    faults:
        Optional chaos hook (plan path, plan, or injector); honours
        client-side ``http_drop`` and ``http_slow`` specs keyed by the
        URL path.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retry: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
        rng: Optional[random.Random] = None,
        circuit=None,
        faults=None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)
        self.retry = retry if retry is not None else RetryPolicy()
        self.circuit = circuit
        self.faults = build_injector(faults)
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()

    # ------------------------------------------------------------------ #
    # transport with retry
    # ------------------------------------------------------------------ #

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        content_type: str = "application/json",
        attempts: Optional[int] = None,
    ) -> Tuple[int, bytes]:
        """One logical request, retried per the policy; ``(status, body)``.

        With a circuit breaker attached, the whole logical request is
        one breaker event: refused locally while open, a success or a
        deterministic server reply closes it (the transport worked),
        and an exhausted retry budget or open-circuit refusal counts
        as one failure.
        """
        if self.circuit is None:
            return self._attempts(method, path, body, content_type, attempts)
        if not self.circuit.allow():
            raise CircuitOpenError(self.circuit.state)
        try:
            outcome = self._attempts(method, path, body, content_type, attempts)
        except ServerReplyError:
            # the server answered conclusively: transport is healthy
            self.circuit.record_success()
            raise
        except ClientError:
            self.circuit.record_failure()
            raise
        self.circuit.record_success()
        return outcome

    def _attempts(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        content_type: str,
        attempts: Optional[int],
    ) -> Tuple[int, bytes]:
        """The retry loop itself (circuit-unaware)."""
        url = self.base_url + path
        budget = attempts if attempts is not None else self.retry.max_attempts
        last: Exception = ClientError("no attempt made")
        for attempt in range(budget):
            request = urllib.request.Request(url, data=body, method=method)
            if body is not None:
                request.add_header("Content-Type", content_type)
            retry_after: Optional[float] = None
            try:
                if self.faults.enabled:
                    if self.faults.fires("http_drop", key=path):
                        raise urllib.error.URLError("injected connection drop")
                    self.faults.sleep("http_slow", key=path)
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as response:
                    return response.status, response.read()
            except urllib.error.HTTPError as exc:
                payload = exc.read()
                reply = ServerReplyError(exc.code, _envelope_error(payload))
                if not reply.retryable:
                    raise reply from None
                retry_after = _parse_retry_after(
                    exc.headers.get("Retry-After")
                )
                last = reply
            except urllib.error.URLError as exc:
                # connection refused/reset/dropped: the server may be
                # restarting (or the injector is pretending it is)
                last = ClientError(f"connection failed: {exc.reason}")
            except (http.client.HTTPException, OSError) as exc:
                # a connection dropped mid-exchange escapes urllib
                # unwrapped (e.g. RemoteDisconnected): same treatment
                last = ClientError(
                    f"connection failed: {exc.__class__.__name__}: {exc}"
                )
            if attempt + 1 < budget:
                self._sleep(self.retry.delay(attempt, self._rng, retry_after))
        raise RetriesExhaustedError(budget, last)

    def _json(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        body = (
            json.dumps(payload, separators=(",", ":")).encode("utf-8")
            if payload is not None
            else None
        )
        _status, raw = self._request(method, path, body)
        return json.loads(raw.decode("utf-8"))

    # ------------------------------------------------------------------ #
    # API surface
    # ------------------------------------------------------------------ #

    def solve(
        self,
        pstar: float = 2.0,
        collateral: float = 0.0,
        params: Optional[dict] = None,
    ):
        """``POST /v1/solve``; returns the decoded equilibrium object."""
        payload: dict = {"kind": "solve", "pstar": pstar, "collateral": collateral}
        if params is not None:
            payload["params"] = params
        return decode_result(self._json("POST", "/v1/solve", payload)["result"])

    def validate(
        self,
        pstar: float = 2.0,
        collateral: float = 0.0,
        n_paths: int = 20_000,
        seed: Optional[int] = None,
        params: Optional[dict] = None,
    ):
        """``POST /v1/validate``; returns the decoded validation result."""
        payload: dict = {
            "kind": "validate",
            "pstar": pstar,
            "collateral": collateral,
            "n_paths": n_paths,
        }
        if seed is not None:
            payload["seed"] = seed
        if params is not None:
            payload["params"] = params
        return decode_result(
            self._json("POST", "/v1/validate", payload)["result"]
        )

    def batch(self, requests: Sequence[dict]) -> List[dict]:
        """``POST /v1/batch``: JSONL in, one record dict per request out."""
        body = "".join(
            json.dumps(request, separators=(",", ":")) + "\n"
            for request in requests
        ).encode("utf-8")
        _status, raw = self._request(
            "POST", "/v1/batch", body, content_type="application/x-ndjson"
        )
        return [
            json.loads(line)
            for line in raw.decode("utf-8").splitlines()
            if line.strip()
        ]

    def sweep(
        self,
        pstars: Sequence[float],
        collateral: float = 0.0,
        tolerance: Optional[float] = None,
    ) -> List[dict]:
        """``GET /v1/sweep``; one ``{pstar, success_rate, ...}`` per point.

        ``tolerance`` opts the sweep into the server's surface tier:
        points certified within it come back with ``source="surface"``
        and their ``bound``; ``tolerance=0.0`` demands exact answers.
        """
        query = ",".join(repr(float(p)) for p in pstars)
        url = f"/v1/sweep?pstars={query}&collateral={collateral!r}"
        if tolerance is not None:
            url += f"&tolerance={tolerance!r}"
        return self._json("GET", url)["results"]

    # ------------------------------------------------------------------ #
    # operational endpoints
    # ------------------------------------------------------------------ #

    def health(self) -> bool:
        """Liveness: True iff ``/healthz`` answers 200."""
        return self._probe("/healthz")

    def ready(self) -> bool:
        """Readiness: True iff ``/readyz`` answers 200 (False: draining)."""
        return self._probe("/readyz")

    def _probe(self, path: str) -> bool:
        # probes answer NOW, never retry: a draining server's 503 must
        # come back as an immediate False, not a slept-through backoff
        try:
            status, _body = self._request("GET", path, attempts=1)
        except ClientError:
            return False
        return status == 200

    def version(self) -> dict:
        """The server's ``/version`` document."""
        return self._json("GET", "/version")

    def server_info(self) -> dict:
        """What this replica is serving: package version, key-schema
        version, and the loaded surface artifact (version, axes,
        checksum) or ``None`` -- the ``/version`` document, shaped for
        operator tooling."""
        document = self.version()
        return {
            "server": document.get("server"),
            "version": document.get("version"),
            "key_version": document.get("key_version"),
            "surface": document.get("surface"),
        }

    def metrics(self) -> str:
        """The live Prometheus text exposition from ``/metrics``."""
        _status, raw = self._request("GET", "/metrics")
        return raw.decode("utf-8")


def _envelope_error(payload: bytes) -> Dict[str, object]:
    """The ``error`` object of an envelope body (tolerant of junk)."""
    try:
        data = json.loads(payload.decode("utf-8"))
        error = data.get("error")
        if isinstance(error, dict):
            return error
    except (UnicodeDecodeError, ValueError):
        pass
    return {"code": "unknown", "message": payload[:200].decode("utf-8", "replace")}


def _parse_retry_after(value: Optional[str]) -> Optional[float]:
    if value is None:
        return None
    try:
        return max(0.0, float(value))
    except ValueError:
        return None
