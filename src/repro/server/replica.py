"""Replica subprocess management for the sharded serving tier.

Each shard of ``repro-swaps serve --replicas N`` is a *full threaded
server* (:class:`~repro.server.app.SwapServer`) in its own process:
its own ``SwapService``, its own surface/cache/engine chain, its own
GIL. The router process never solves anything -- scale-out is real
processes, not threads.

:class:`ReplicaProcess` wraps one such subprocess: it is spawned as
``python -m repro.cli serve --port 0 ...`` (flags derived from the
router's :class:`~repro.server.config.ServerConfig`), and its bound
port is discovered from the one-line JSON *announce* the serve command
prints on stdout (``{"event": "listening", "host", "port", "pid"}``)
-- the same contract the CI smoke test and human operators already
rely on. :class:`ReplicaSet` spawns N of them concurrently (cold
starts overlap), names them ``replica-0..N-1`` for metric labels and
ring membership, and tears them down with SIGTERM so each drains
gracefully.

Per-replica resource carve-outs:

* ``cache_dir`` becomes ``cache_dir/replica-i`` -- shards own disjoint
  keyslices, so sharing one disk tier would only serialise writes;
* ``metrics_out``/``fault_plan`` pass through unchanged (each process
  keeps its own registry; one plan drives chaos everywhere).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from typing import List, Optional, Tuple

from repro.obs.logging import get_logger
from repro.server.config import ServerConfig

__all__ = ["ReplicaProcess", "ReplicaSet", "replica_command"]

_ANNOUNCE_TIMEOUT = 60.0  # cold numpy/scipy imports on a loaded box


def replica_command(config: ServerConfig, cache_dir: Optional[str]) -> List[str]:
    """The argv for one replica subprocess derived from ``config``.

    The replica binds an ephemeral port on loopback: the router is the
    only intended caller, and the announce line reports the real port.
    """
    argv = [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "--host",
        "127.0.0.1",
        "--port",
        "0",
        "--workers",
        str(config.workers),
        "--queue-depth",
        str(config.queue_depth),
        "--max-body-bytes",
        str(config.max_body_bytes),
        "--drain-timeout",
        str(config.drain_timeout),
    ]
    if config.deadline is not None:
        argv += ["--deadline", str(config.deadline)]
    if cache_dir is not None:
        argv += ["--cache-dir", cache_dir]
    if config.cache_entries is not None:
        argv += ["--cache-entries", str(config.cache_entries)]
    if config.timeout is not None:
        argv += ["--timeout", str(config.timeout)]
    if config.fault_plan is not None:
        argv += ["--fault-plan", config.fault_plan]
    if config.surface is not None:
        argv += ["--surface", config.surface]
    if config.tolerance is not None:
        argv += ["--tolerance", str(config.tolerance)]
    return argv


class ReplicaProcess:
    """One shard: a threaded ``SwapServer`` subprocess on loopback."""

    def __init__(self, name: str, config: ServerConfig) -> None:
        self.name = name
        cache_dir = (
            os.path.join(config.cache_dir, name)
            if config.cache_dir is not None
            else None
        )
        self._argv = replica_command(config, cache_dir)
        self._process: Optional[subprocess.Popen] = None
        self._announce: Optional[dict] = None
        self._announced = threading.Event()
        self._reader: Optional[threading.Thread] = None

    # -- lifecycle ------------------------------------------------------ #

    def spawn(self) -> None:
        """Start the subprocess; returns immediately (no port yet)."""
        self._process = subprocess.Popen(
            self._argv,
            stdout=subprocess.PIPE,
            stderr=None,  # replica tracebacks surface on the router's stderr
            text=True,
        )
        # one reader per replica: capture the announce line, then keep
        # draining so a chatty subprocess can never block on the pipe
        self._reader = threading.Thread(
            target=self._read_stdout, name=f"repro-{self.name}-out", daemon=True
        )
        self._reader.start()

    def _read_stdout(self) -> None:
        assert self._process is not None and self._process.stdout is not None
        for line in self._process.stdout:
            if not self._announced.is_set():
                try:
                    event = json.loads(line)
                    if event.get("event") == "listening":
                        self._announce = event
                        self._announced.set()
                except (ValueError, TypeError):
                    pass
        self._announced.set()  # EOF: wake any waiter (spawn failed)

    def wait_ready(self, timeout: float = _ANNOUNCE_TIMEOUT) -> Tuple[str, int]:
        """Block until the announce line arrives; ``(host, port)``.

        Raises ``RuntimeError`` when the subprocess dies (or stays
        silent past ``timeout``) instead -- a replica that cannot bind
        is a deployment error, not something to route around.
        """
        deadline = time.monotonic() + timeout
        while not self._announced.wait(timeout=0.1):
            if time.monotonic() > deadline:
                self.stop(drain=False)
                raise RuntimeError(
                    f"{self.name} did not announce within {timeout:g}s"
                )
        if self._announce is None:
            code = self._process.poll() if self._process else None
            raise RuntimeError(
                f"{self.name} exited (code {code}) before announcing its port"
            )
        return str(self._announce["host"]), int(self._announce["port"])

    @property
    def alive(self) -> bool:
        return self._process is not None and self._process.poll() is None

    @property
    def pid(self) -> Optional[int]:
        return self._process.pid if self._process is not None else None

    def stop(self, drain: bool = True, timeout: float = 15.0) -> Optional[int]:
        """SIGTERM (graceful drain inside the replica), then reap.

        Escalates to SIGKILL if the replica ignores the term past
        ``timeout``. Returns the exit code (``None`` if never spawned).
        """
        if self._process is None:
            return None
        if self._process.poll() is None:
            self._process.terminate()
            try:
                self._process.wait(timeout=timeout if drain else 1.0)
            except subprocess.TimeoutExpired:
                self._process.kill()
                self._process.wait(timeout=5.0)
        if self._reader is not None:
            self._reader.join(timeout=1.0)
        return self._process.returncode


class ReplicaSet:
    """N replicas spawned together, stopped together.

    Usable as a context manager; :meth:`start` returns the endpoint
    list in replica order -- the input to the router's hash ring.
    """

    def __init__(self, config: ServerConfig, count: int) -> None:
        if count < 1:
            raise ValueError(f"replica count must be >= 1, got {count}")
        self.config = config
        self.replicas = [
            ReplicaProcess(f"replica-{i}", config) for i in range(count)
        ]
        self.endpoints: List[Tuple[str, int]] = []

    @property
    def names(self) -> List[str]:
        return [replica.name for replica in self.replicas]

    def start(self) -> List[Tuple[str, int]]:
        """Spawn all replicas, wait for every announce; endpoints."""
        started = time.monotonic()
        for replica in self.replicas:
            replica.spawn()
        try:
            self.endpoints = [
                replica.wait_ready() for replica in self.replicas
            ]
        except Exception:
            self.stop(drain=False)
            raise
        get_logger().log(
            "replicas_ready",
            count=len(self.replicas),
            seconds=round(time.monotonic() - started, 3),
            ports=[port for _host, port in self.endpoints],
        )
        return list(self.endpoints)

    def stop(self, drain: bool = True) -> None:
        """SIGTERM every replica, then reap them all."""
        for replica in self.replicas:
            if replica.alive:
                replica._process.terminate()  # overlap the drains
        for replica in self.replicas:
            replica.stop(drain=drain)

    def __enter__(self) -> "ReplicaSet":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
