"""Replica subprocess management for the sharded serving tier.

Each shard of ``repro-swaps serve --replicas N`` is a *full threaded
server* (:class:`~repro.server.app.SwapServer`) in its own process:
its own ``SwapService``, its own surface/cache/engine chain, its own
GIL. The router process never solves anything -- scale-out is real
processes, not threads.

:class:`ReplicaProcess` wraps one such subprocess: it is spawned as
``python -m repro.cli serve --port 0 ...`` (flags derived from the
router's :class:`~repro.server.config.ServerConfig`), and its bound
port is discovered from the one-line JSON *announce* the serve command
prints on stdout (``{"event": "listening", "host", "port", "pid"}``)
-- the same contract the CI smoke test and human operators already
rely on. :class:`ReplicaSet` spawns N of them concurrently (cold
starts overlap), names them ``replica-0..N-1`` for metric labels and
ring membership, and tears them down with SIGTERM so each drains
gracefully.

Per-replica resource carve-outs:

* ``cache_dir`` becomes ``cache_dir/replica-i`` -- shards own disjoint
  keyslices, so sharing one disk tier would only serialise writes;
* ``metrics_out``/``fault_plan`` pass through unchanged (each process
  keeps its own registry; one plan drives chaos everywhere).
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.logging import get_logger
from repro.server.config import ServerConfig

__all__ = [
    "ReplicaProcess",
    "ReplicaSet",
    "ReplicaSupervisor",
    "replica_command",
]

_ANNOUNCE_TIMEOUT = 60.0  # cold numpy/scipy imports on a loaded box


def replica_command(config: ServerConfig, cache_dir: Optional[str]) -> List[str]:
    """The argv for one replica subprocess derived from ``config``.

    The replica binds an ephemeral port on loopback: the router is the
    only intended caller, and the announce line reports the real port.
    """
    argv = [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "--host",
        "127.0.0.1",
        "--port",
        "0",
        "--workers",
        str(config.workers),
        "--queue-depth",
        str(config.queue_depth),
        "--max-body-bytes",
        str(config.max_body_bytes),
        "--drain-timeout",
        str(config.drain_timeout),
    ]
    if config.deadline is not None:
        argv += ["--deadline", str(config.deadline)]
    if cache_dir is not None:
        argv += ["--cache-dir", cache_dir]
    if config.cache_entries is not None:
        argv += ["--cache-entries", str(config.cache_entries)]
    if config.timeout is not None:
        argv += ["--timeout", str(config.timeout)]
    if config.fault_plan is not None:
        argv += ["--fault-plan", config.fault_plan]
    if config.surface is not None:
        argv += ["--surface", config.surface]
    if config.tolerance is not None:
        argv += ["--tolerance", str(config.tolerance)]
    return argv


class ReplicaProcess:
    """One shard: a threaded ``SwapServer`` subprocess on loopback."""

    def __init__(self, name: str, config: ServerConfig) -> None:
        self.name = name
        cache_dir = (
            os.path.join(config.cache_dir, name)
            if config.cache_dir is not None
            else None
        )
        self._argv = replica_command(config, cache_dir)
        self._process: Optional[subprocess.Popen] = None
        self._announce: Optional[dict] = None
        self._announced = threading.Event()
        self._reader: Optional[threading.Thread] = None

    # -- lifecycle ------------------------------------------------------ #

    def spawn(self) -> None:
        """Start the subprocess; returns immediately (no port yet)."""
        self._process = subprocess.Popen(
            self._argv,
            stdout=subprocess.PIPE,
            stderr=None,  # replica tracebacks surface on the router's stderr
            text=True,
        )
        # one reader per replica: capture the announce line, then keep
        # draining so a chatty subprocess can never block on the pipe
        self._reader = threading.Thread(
            target=self._read_stdout, name=f"repro-{self.name}-out", daemon=True
        )
        self._reader.start()

    def _read_stdout(self) -> None:
        assert self._process is not None and self._process.stdout is not None
        for line in self._process.stdout:
            if not self._announced.is_set():
                try:
                    event = json.loads(line)
                    if event.get("event") == "listening":
                        self._announce = event
                        self._announced.set()
                except (ValueError, TypeError):
                    pass
        self._announced.set()  # EOF: wake any waiter (spawn failed)

    def wait_ready(self, timeout: float = _ANNOUNCE_TIMEOUT) -> Tuple[str, int]:
        """Block until the announce line arrives; ``(host, port)``.

        Raises ``RuntimeError`` when the subprocess dies (or stays
        silent past ``timeout``) instead -- a replica that cannot bind
        is a deployment error, not something to route around.
        """
        deadline = time.monotonic() + timeout
        while not self._announced.wait(timeout=0.1):
            if time.monotonic() > deadline:
                self.stop(drain=False)
                raise RuntimeError(
                    f"{self.name} did not announce within {timeout:g}s"
                )
        if self._announce is None:
            code = self._process.poll() if self._process else None
            raise RuntimeError(
                f"{self.name} exited (code {code}) before announcing its port"
            )
        return str(self._announce["host"]), int(self._announce["port"])

    @property
    def alive(self) -> bool:
        return self._process is not None and self._process.poll() is None

    @property
    def pid(self) -> Optional[int]:
        return self._process.pid if self._process is not None else None

    def stop(self, drain: bool = True, timeout: float = 15.0) -> Optional[int]:
        """SIGTERM (graceful drain inside the replica), then reap.

        Escalates to SIGKILL if the replica ignores the term past
        ``timeout``. Returns the exit code (``None`` if never spawned).
        """
        if self._process is None:
            return None
        if self._process.poll() is None:
            self._process.terminate()
            try:
                self._process.wait(timeout=timeout if drain else 1.0)
            except subprocess.TimeoutExpired:
                self._process.kill()
                self._process.wait(timeout=5.0)
        if self._reader is not None:
            self._reader.join(timeout=1.0)
        return self._process.returncode


class ReplicaSet:
    """N replicas spawned together, stopped together.

    Usable as a context manager; :meth:`start` returns the endpoint
    list in replica order -- the input to the router's hash ring.
    """

    def __init__(self, config: ServerConfig, count: int) -> None:
        if count < 1:
            raise ValueError(f"replica count must be >= 1, got {count}")
        self.config = config
        self.replicas = [
            ReplicaProcess(f"replica-{i}", config) for i in range(count)
        ]
        self.endpoints: List[Tuple[str, int]] = []
        self._created = count  # monotonic name allocator: names never recycle

    @property
    def names(self) -> List[str]:
        return [replica.name for replica in self.replicas]

    def process(self, name: str) -> ReplicaProcess:
        for replica in self.replicas:
            if replica.name == name:
                return replica
        raise KeyError(f"no replica named {name!r}")

    def next_name(self) -> str:
        """A never-before-used replica name (metric labels stay unique)."""
        name = f"replica-{self._created}"
        self._created += 1
        return name

    def respawn(self, name: str, faults=None) -> Tuple[str, int]:
        """Replace a dead replica with a fresh subprocess, same name.

        Blocking: reaps the old process, spawns the new one, replays
        the announce handshake. Raises ``RuntimeError`` when the fresh
        process dies before announcing (the supervisor counts that as
        another death and backs off).
        """
        index = next(
            (i for i, r in enumerate(self.replicas) if r.name == name), None
        )
        if index is None:
            raise KeyError(f"no replica named {name!r}")
        self.replicas[index].stop(drain=False, timeout=1.0)
        fresh = ReplicaProcess(name, self.config)
        fresh.spawn()
        if faults is not None and faults.enabled and faults.fires(
            "replica_crash_loop", key=name
        ):
            # the chaos plan declared this restart doomed: kill the
            # subprocess before it can announce, exactly like a replica
            # that segfaults on boot
            fresh._process.kill()
        try:
            endpoint = fresh.wait_ready()
        except RuntimeError:
            fresh.stop(drain=False)
            raise
        self.replicas[index] = fresh
        if index < len(self.endpoints):
            self.endpoints[index] = endpoint
        return endpoint

    def add_process(self, name: Optional[str] = None) -> Tuple[str, str, int]:
        """Spawn one more replica; ``(name, host, port)`` once announced."""
        if name is None:
            name = self.next_name()
        if any(replica.name == name for replica in self.replicas):
            raise ValueError(f"replica {name!r} already exists")
        fresh = ReplicaProcess(name, self.config)
        fresh.spawn()
        try:
            host, port = fresh.wait_ready()
        except RuntimeError:
            fresh.stop(drain=False)
            raise
        self.replicas.append(fresh)
        self.endpoints.append((host, port))
        return name, host, port

    def remove_process(self, name: str, drain: bool = True) -> Optional[int]:
        """SIGTERM one replica (graceful drain inside it) and forget it."""
        index = next(
            (i for i, r in enumerate(self.replicas) if r.name == name), None
        )
        if index is None:
            raise KeyError(f"no replica named {name!r}")
        replica = self.replicas.pop(index)
        if index < len(self.endpoints):
            self.endpoints.pop(index)
        return replica.stop(drain=drain)

    def start(self) -> List[Tuple[str, int]]:
        """Spawn all replicas, wait for every announce; endpoints."""
        started = time.monotonic()
        for replica in self.replicas:
            replica.spawn()
        try:
            self.endpoints = [
                replica.wait_ready() for replica in self.replicas
            ]
        except Exception:
            self.stop(drain=False)
            raise
        get_logger().log(
            "replicas_ready",
            count=len(self.replicas),
            seconds=round(time.monotonic() - started, 3),
            ports=[port for _host, port in self.endpoints],
        )
        return list(self.endpoints)

    def stop(self, drain: bool = True) -> None:
        """SIGTERM every replica, then reap them all."""
        for replica in self.replicas:
            if replica.alive:
                replica._process.terminate()  # overlap the drains
        for replica in self.replicas:
            replica.stop(drain=drain)

    def __enter__(self) -> "ReplicaSet":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


class ReplicaSupervisor:
    """Restart policy + mechanics for a fleet of owned replicas.

    The router's event loop *drives* this object (detect death, ask
    when to restart, run the blocking restart in an executor); the
    object itself holds all per-replica state, so the policy is unit
    testable with a fake clock and no subprocesses:

    * **backoff** -- the n-th death inside ``flap_window`` schedules a
      restart after ``backoff * 2**n`` seconds (capped at ``cap``),
      jittered deterministically per replica so a correlated crash of
      the whole fleet does not respawn in lockstep;
    * **flap detection** -- ``flap_limit`` deaths inside
      ``flap_window`` *parks* the replica: the supervisor stops
      restarting it (a crash-looping binary would burn CPU forever)
      until :meth:`unpark` or an admin replacement.

    State machine per replica::

        healthy --death--> waiting(backoff) --due--> restarting
           ^                    |                        |
           |                    +--death x flap_limit--> parked
           +------readmitted (caller re-adds to ring)----+
    """

    def __init__(
        self,
        replica_set: Optional[ReplicaSet] = None,
        backoff: float = 0.5,
        cap: float = 10.0,
        flap_limit: int = 5,
        flap_window: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        faults=None,
        seed: int = 0,
    ) -> None:
        self._replica_set = replica_set
        self.backoff = float(backoff)
        self.cap = float(cap)
        self.flap_limit = int(flap_limit)
        self.flap_window = float(flap_window)
        self._clock = clock
        self._faults = faults
        self._seed = int(seed)
        self._deaths: Dict[str, deque] = {}
        self._due: Dict[str, float] = {}
        self._delay: Dict[str, float] = {}
        self._parked: set = set()

    # -- policy ---------------------------------------------------------- #

    def _rng(self, name: str) -> random.Random:
        return random.Random(
            f"{self._seed}:{name}:{len(self._deaths.get(name, ()))}"
        )

    def note_failure(self, name: str) -> Optional[float]:
        """Record one detected death; schedule the next restart.

        Returns the backoff delay in seconds, or ``None`` when the flap
        detector just parked the replica.
        """
        now = self._clock()
        deaths = self._deaths.setdefault(name, deque())
        deaths.append(now)
        while deaths and now - deaths[0] > self.flap_window:
            deaths.popleft()
        if len(deaths) >= self.flap_limit:
            self._parked.add(name)
            self._due.pop(name, None)
            self._delay.pop(name, None)
            return None
        exponent = len(deaths) - 1
        delay = min(self.cap, self.backoff * (2.0 ** exponent))
        # deterministic jitter in [0.5, 1.0)x: seeded per (replica,
        # death count), so a replayed chaos run backs off identically
        delay *= 0.5 + 0.5 * self._rng(name).random()
        self._due[name] = now + delay
        self._delay[name] = delay
        return delay

    def pending(self, name: str) -> bool:
        """Whether a restart is scheduled (waiting or due)."""
        return name in self._due

    def due(self, name: str) -> bool:
        """Whether the scheduled restart's backoff has elapsed."""
        due_at = self._due.get(name)
        return due_at is not None and self._clock() >= due_at

    def parked(self, name: str) -> bool:
        return name in self._parked

    def backoff_of(self, name: str) -> float:
        """The delay of the pending restart (0 when none is pending)."""
        return self._delay.get(name, 0.0)

    def note_restarted(self, name: str) -> None:
        """The caller readmitted the replica: clear the pending slot.

        The death window deliberately survives -- a replica that keeps
        announcing and then dying must still trip the flap detector.
        """
        self._due.pop(name, None)
        self._delay.pop(name, None)

    def unpark(self, name: str) -> None:
        """Operator override: forgive the flap history, resume restarts."""
        self._parked.discard(name)
        self._deaths.pop(name, None)

    def forget(self, name: str) -> None:
        """The replica left the topology (admin remove)."""
        self._deaths.pop(name, None)
        self._due.pop(name, None)
        self._delay.pop(name, None)
        self._parked.discard(name)

    def state(self, name: str) -> Dict[str, object]:
        """Operator view (the admin topology document)."""
        return {
            "deaths": len(self._deaths.get(name, ())),
            "backoff": round(self.backoff_of(name), 4),
            "pending": self.pending(name),
            "parked": self.parked(name),
        }

    # -- mechanics (blocking; run off the event loop) -------------------- #

    def restart(self, name: str) -> Tuple[str, int]:
        """Respawn + announce handshake; ``(host, port)`` on success.

        Raises ``RuntimeError`` when the fresh process dies before
        announcing -- the caller records another failure and backs off.
        """
        if self._replica_set is None:
            raise RuntimeError("supervisor has no replica set to restart")
        return self._replica_set.respawn(name, faults=self._faults)
