"""The HTTP serving layer: stdlib-only, production-shaped.

``repro.server`` puts :class:`~repro.service.api.SwapService` behind a
network socket with the behaviours a real deployment needs -- bounded
admission (``429`` + ``Retry-After``), body-size and deadline limits
(``413``/``504``), structured error envelopes, graceful drain on
SIGTERM/SIGINT, live ``/metrics`` -- and ships the matching client-side
retry discipline. The pieces:

* :mod:`repro.server.config` -- :class:`ServerConfig`, every knob of
  the layer (the ``repro-swaps serve`` flags map onto it);
* :mod:`repro.server.wire` -- error envelopes and the code -> HTTP
  status mapping;
* :mod:`repro.server.metrics` -- the ``repro_http_*`` instrument set;
* :mod:`repro.server.app` -- :class:`SwapServer` (routes, admission,
  drain) and the blocking :func:`serve` loop;
* :mod:`repro.server.router` / :mod:`repro.server.replica` /
  :mod:`repro.server.aio` -- the sharded tier behind
  ``serve --replicas N``: consistent-hash routing keys, replica
  subprocess management, and the asyncio router front end
  (:class:`RouterServer`, :func:`serve_sharded`);
* :mod:`repro.server.client` -- :class:`SwapClient` with capped
  exponential backoff + full jitter, retrying only on ``429``/``503``/
  retryable envelopes;
* :mod:`repro.server.circuit` -- :class:`CircuitBreaker`, the client's
  defence against *sustained* failure (open after N consecutive
  exhausted retry budgets, half-open probe back in).

Quickstart::

    from repro.server import ServerConfig, SwapServer
    from repro.server.client import SwapClient

    server = SwapServer(ServerConfig(port=0)).start()   # ephemeral port
    client = SwapClient(f"http://127.0.0.1:{server.port}")
    print(client.solve(pstar=2.0).success_rate)
    server.shutdown()

or, from a shell: ``repro-swaps serve --port 8100``.
"""

from repro.server.aio import RouterServer, serve_sharded
from repro.server.app import AdmissionGate, SwapServer, serve
from repro.server.circuit import CircuitBreaker
from repro.server.client import (
    CircuitOpenError,
    ClientError,
    HedgePolicy,
    RetriesExhaustedError,
    RetryPolicy,
    ServerReplyError,
    SwapClient,
)
from repro.server.config import ServerConfig
from repro.server.metrics import HTTPMetrics, SupervisorMetrics
from repro.server.overload import CostAwareGate, route_weight
from repro.server.replica import ReplicaSupervisor
from repro.server.wire import (
    STATUS_BY_CODE,
    DeadlineExceededError,
    error_envelope,
    status_for,
)

__all__ = [
    "ServerConfig",
    "SwapServer",
    "serve",
    "serve_sharded",
    "RouterServer",
    "AdmissionGate",
    "CostAwareGate",
    "route_weight",
    "ReplicaSupervisor",
    "SupervisorMetrics",
    "SwapClient",
    "HedgePolicy",
    "RetryPolicy",
    "ClientError",
    "ServerReplyError",
    "RetriesExhaustedError",
    "CircuitBreaker",
    "CircuitOpenError",
    "HTTPMetrics",
    "DeadlineExceededError",
    "STATUS_BY_CODE",
    "status_for",
    "error_envelope",
]
