"""Cost-aware admission with CoDel-style overload shedding.

The static :class:`~repro.server.app.AdmissionGate` admits at most
``queue_depth`` requests regardless of what they are -- but a
swap-graph lattice solve costs 10-100x a surface-certified sweep
point, so a depth tuned for solves melts under graph traffic and
starves under sweeps. :class:`CostAwareGate` keeps the same lifecycle
surface (``inflight``/``leave``/``wait_idle``, so drains are
unchanged) and adds three behaviours:

* **per-endpoint weights** -- capacity is ``depth`` *solve-units*;
  each request debits its route's weight (:data:`ROUTE_WEIGHTS`), with
  a discount for sweeps that opt into the surface tier (a certified
  interpolation costs microseconds, not an engine pass);
* **CoDel-style shedding** -- the gate tracks a sliding window of
  completed-request latencies; when the p95 stays above ``target``
  for ``hold`` seconds the fleet is oversubscribed and the gate halves
  its effective capacity until the p95 recovers, shedding the excess
  as fast retryable 429s *before* requests start blowing deadlines;
* **deadline-budget admission** -- a request arriving with a remaining
  budget (the router forwards ``X-Repro-Deadline``) that the route's
  observed latency says cannot be met is refused in microseconds
  instead of burning a worker for seconds and answering 504 anyway.

Every shed path keeps the wire contract of the static gate: the
caller maps the returned reason onto the same typed envelopes
(``queue_full`` stays byte-identical; the parity suite holds both
front ends to it).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Dict, Optional

from repro.server.app import AdmissionGate

__all__ = ["ROUTE_WEIGHTS", "CostAwareGate", "route_weight"]

# admission cost per route, in solve-units: a swap-graph request runs a
# best-response lattice over the whole graph (whole seconds of CPU), a
# validate runs a Monte Carlo batch, a batch line or sweep point is at
# most one engine pass, a solve is the unit
ROUTE_WEIGHTS: Dict[str, float] = {
    "/v1/swap-graph": 8.0,
    "/v1/validate": 4.0,
    "/v1/batch": 2.0,
    "/v1/sweep": 1.0,
    "/v1/solve": 1.0,
}

# a sweep that opts into surface interpolation (tolerance= in the
# query) is usually answered from the precomputed artifact in
# microseconds -- admit it nearly for free
_SURFACE_SWEEP_WEIGHT = 0.25


def route_weight(path: str, target: str = "") -> float:
    """The admission cost of one request, in solve-units."""
    if path == "/v1/sweep" and "tolerance=" in target:
        return _SURFACE_SWEEP_WEIGHT
    return ROUTE_WEIGHTS.get(path, 1.0)


class CostAwareGate(AdmissionGate):
    """A drop-in :class:`AdmissionGate` that admits by cost, not count.

    Parameters
    ----------
    depth:
        Capacity in solve-units (the old request bound keeps its
        meaning exactly for all-solve traffic). A request whose weight
        exceeds the whole capacity is still admitted when the gate is
        empty -- a lone swap-graph must never be unservable.
    target:
        The sliding-p95 latency (seconds) above which the gate turns
        overloaded and halves its effective capacity. ``None`` never
        sheds on latency.
    hold:
        How long (seconds) the p95 must stay above ``target`` before
        shedding starts -- one slow request is not an overload.
    window:
        Latency samples kept for the p95.
    deadline_factor, warmup:
        A request with remaining budget below ``deadline_factor`` times
        the route's smoothed latency is refused as doomed -- but only
        once ``warmup`` samples exist for the route (cold gates never
        guess).
    clock:
        Injectable monotonic clock (tests drive the hold window).
    """

    def __init__(
        self,
        depth: int,
        target: Optional[float] = None,
        hold: float = 0.25,
        window: int = 256,
        deadline_factor: float = 0.5,
        warmup: int = 8,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        super().__init__(depth)
        self.capacity = float(self.depth)
        self.target = float(target) if target is not None else None
        self.hold = float(hold)
        self.deadline_factor = float(deadline_factor)
        self.warmup = int(warmup)
        self._clock = clock
        self._cost = 0.0
        self._window: deque = deque(maxlen=int(window))
        self._p95 = 0.0
        self._unsorted = 0
        self._over_since: Optional[float] = None
        self._overloaded = False
        # per-route smoothed latency for the doomed-request check
        self._ewma: Dict[str, float] = {}
        self._samples: Dict[str, int] = {}

    # -- state ----------------------------------------------------------- #

    @property
    def inflight_cost(self) -> float:
        with self._lock:
            return self._cost

    @property
    def overloaded(self) -> bool:
        with self._lock:
            return self._overloaded

    @property
    def p95(self) -> float:
        with self._lock:
            return self._p95

    def snapshot(self) -> Dict[str, object]:
        """Operator view of the gate (the admin topology document)."""
        with self._lock:
            return {
                "depth": self.depth,
                "inflight": self._count,
                "cost": round(self._cost, 3),
                "overloaded": self._overloaded,
                "p95": round(self._p95, 6),
                "target": self.target,
            }

    # -- admission ------------------------------------------------------- #

    def admit(
        self,
        route: str,
        target: str = "",
        budget: Optional[float] = None,
    ) -> Optional[str]:
        """Admit one request, or return the shed reason.

        ``None`` means admitted (pair with :meth:`leave`); otherwise
        one of ``"queue_full"`` (cost capacity exhausted),
        ``"overload"`` (CoDel shedding at reduced capacity) or
        ``"deadline"`` (remaining budget provably insufficient).
        """
        weight = route_weight(route, target)
        with self._lock:
            if budget is not None:
                expected = self._ewma.get(route)
                doomed = budget <= 0.0 or (
                    expected is not None
                    and self._samples.get(route, 0) >= self.warmup
                    and budget < expected * self.deadline_factor
                )
                if doomed:
                    return "deadline"
            capacity = self.capacity
            if self._overloaded:
                capacity = capacity / 2.0
                if self._cost + weight > capacity and self._cost > 0.0:
                    return "overload"
            if self._cost + weight > capacity and self._cost > 0.0:
                return "queue_full"
            self._cost += weight
            self._count += 1
            self._idle.clear()
            return None

    def try_enter(self) -> bool:
        """The static gate's API, kept for compatibility: admits one
        solve-unit with no target/budget context."""
        return self.admit("/v1/solve") is None

    def leave(self, cost: float = 1.0) -> None:  # type: ignore[override]
        with self._lock:
            self._cost = max(0.0, self._cost - float(cost))
            self._count -= 1
            if self._count <= 0:
                self._idle.set()

    # -- the latency feedback loop --------------------------------------- #

    def observe(self, route: str, seconds: float) -> None:
        """Feed one completed request's latency back into the gate."""
        seconds = float(seconds)
        with self._lock:
            previous = self._ewma.get(route)
            self._ewma[route] = (
                seconds if previous is None else 0.8 * previous + 0.2 * seconds
            )
            self._samples[route] = self._samples.get(route, 0) + 1
            self._window.append(seconds)
            self._unsorted += 1
            if self._unsorted >= 16 or len(self._window) < 16:
                self._unsorted = 0
                ordered = sorted(self._window)
                self._p95 = ordered[int(0.95 * (len(ordered) - 1))]
            if self.target is None:
                return
            now = self._clock()
            if self._p95 > self.target:
                if self._over_since is None:
                    self._over_since = now
                elif now - self._over_since >= self.hold:
                    self._overloaded = True
            else:
                self._over_since = None
                self._overloaded = False
