"""Keyspace routing for the sharded tier: hash ring + routing keys.

Two pure, synchronous pieces the asyncio front end
(:mod:`repro.server.aio`) composes:

* :class:`HashRing` -- consistent hashing with virtual nodes. Each
  replica owns many pseudo-random points on a 64-bit circle; a key is
  served by the first replica point at or after its own hash. Removing
  a replica re-homes *only* the keyslice it owned (its points vanish,
  their keys fall through to the next point on the circle) -- every
  other shard's cache stays hot. Adding one steals a proportional
  sliver from each. The keyslice-stability tests pin both properties.

* :func:`routing_key` -- the canonical key a request is routed by.
  For single solves/validates it is the *service-layer* canonical key
  (:func:`repro.service.keys.request_key`), so two JSON spellings of
  one request land on the same shard and hit the same cache entry --
  the whole point of sharding by key. Requests the router cannot
  canonicalise (malformed JSON, unknown fields) still route
  *deterministically* by a digest of the raw bytes; the replica then
  produces the authoritative error envelope, keeping router and
  threaded server byte-identical on rejects.

Hashing uses BLAKE2b (stdlib, keyed-length 8) rather than Python's
``hash()`` -- ring placement must be stable across processes and runs
(``PYTHONHASHSEED`` randomises ``hash``).
"""

from __future__ import annotations

import bisect
import json
from hashlib import blake2b
from typing import Dict, List, Optional, Sequence, Tuple
from urllib.parse import parse_qs, urlsplit

__all__ = ["HashRing", "routing_key", "DEFAULT_VNODES"]

# 64 virtual nodes per replica keeps the largest/smallest keyslice
# within ~2x of each other for small N while the ring stays tiny
DEFAULT_VNODES = 64


def _point(token: str) -> int:
    """A stable 64-bit ring position for ``token``."""
    return int.from_bytes(blake2b(token.encode("utf-8"), digest_size=8).digest(), "big")


class HashRing:
    """Consistent-hash ring over named nodes (replica names).

    Not thread-safe; the router mutates it only from the event loop.
    """

    def __init__(
        self, nodes: Sequence[str] = (), vnodes: int = DEFAULT_VNODES
    ) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        self._nodes: List[str] = []
        self._points: List[int] = []  # sorted ring positions
        self._owners: Dict[int, str] = {}  # position -> node
        for node in nodes:
            self.add(node)

    @property
    def nodes(self) -> List[str]:
        """The member nodes, in insertion order."""
        return list(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def add(self, node: str) -> None:
        """Add ``node`` (its vnode points) to the ring."""
        if node in self._nodes:
            raise ValueError(f"node {node!r} is already on the ring")
        self._nodes.append(node)
        for i in range(self.vnodes):
            position = _point(f"{node}#{i}")
            # a full 64-bit collision between distinct tokens is ~2^-64
            # per pair; first owner wins and keeps the ring consistent
            if position in self._owners:
                continue
            bisect.insort(self._points, position)
            self._owners[position] = node

    def remove(self, node: str) -> None:
        """Drop ``node``; only its keyslice re-homes."""
        if node not in self._nodes:
            raise ValueError(f"node {node!r} is not on the ring")
        self._nodes.remove(node)
        kept_points = [
            position
            for position in self._points
            if self._owners[position] != node
        ]
        self._owners = {
            position: owner
            for position, owner in self._owners.items()
            if owner != node
        }
        self._points = kept_points

    def node_for(self, key: str) -> Optional[str]:
        """The node owning ``key`` (``None`` on an empty ring)."""
        if not self._points:
            return None
        index = bisect.bisect_right(self._points, _point(key))
        if index == len(self._points):
            index = 0  # wrap: the circle has no end
        return self._owners[self._points[index]]

    def nodes_for(self, key: str, count: Optional[int] = None) -> List[str]:
        """Up to ``count`` *distinct* nodes for ``key``, preference order.

        The failover walk: entry 0 is the home shard, entry 1 the shard
        whose cache the key lands in if the home is down, and so on.
        Default ``count``: every node.
        """
        if not self._points:
            return []
        want = len(self._nodes) if count is None else min(count, len(self._nodes))
        found: List[str] = []
        start = bisect.bisect_right(self._points, _point(key))
        for step in range(len(self._points)):
            owner = self._owners[
                self._points[(start + step) % len(self._points)]
            ]
            if owner not in found:
                found.append(owner)
                if len(found) == want:
                    break
        return found


def _digest_key(prefix: str, payload: bytes) -> str:
    return f"{prefix}:{blake2b(payload, digest_size=16).hexdigest()}"


def routing_key(method: str, target: str, body: bytes) -> str:
    """The key one HTTP request is consistent-hashed by.

    * ``POST /v1/solve`` / ``/v1/validate`` / ``/v1/swap-graph``: the
      service-layer canonical key of the parsed request (cache-aligned
      routing); un-parseable bodies fall back to a digest of the raw
      bytes.
    * ``GET /v1/sweep``: a digest of the normalised query parameters
      (a repeated sweep re-lands on the shard whose chain served it).
    * ``POST /v1/batch``: a digest of the body (a batch is one unit;
      its internal dedup works best on one shard's cache).
    * anything else (ops routes are not proxied, but stay total): the
      path itself.
    """
    parts = urlsplit(target)
    path = parts.path
    if path in ("/v1/solve", "/v1/validate", "/v1/swap-graph"):
        kind = {
            "/v1/solve": "solve",
            "/v1/validate": "validate",
            "/v1/swap-graph": "swap_graph",
        }[path]
        try:
            data = json.loads(body.decode("utf-8"))
            if not isinstance(data, dict):
                raise ValueError("body is not an object")
            data.setdefault("kind", kind)
            # imported lazily: repro.service pulls in the solver stack
            from repro.service.keys import request_key
            from repro.service.requests import parse_request

            return request_key(parse_request(data))
        except Exception:
            return _digest_key("body", body)
    if path == "/v1/sweep":
        normalised = json.dumps(
            sorted(parse_qs(parts.query).items()), separators=(",", ":")
        )
        return _digest_key("sweep", normalised.encode("utf-8"))
    if path == "/v1/batch":
        return _digest_key("batch", body)
    return _digest_key("path", path.encode("utf-8"))
