"""A circuit breaker for the HTTP client.

Retry policies handle *transient* failures; a circuit breaker handles
*sustained* ones. When every retry budget against an endpoint keeps
running out, hammering it harder only adds load to whatever is already
failing -- so after ``failure_threshold`` consecutive failures the
breaker **opens** and the client refuses calls locally (an immediate
typed error, no sockets touched). After ``reset_timeout`` seconds the
breaker moves to **half-open** and lets exactly one probe call
through: success closes the circuit, failure re-opens it and restarts
the clock.

The state machine is the classic three-state one:

``closed`` --(threshold consecutive failures)--> ``open``
--(reset_timeout elapses)--> ``half_open`` --(probe ok)--> ``closed``
or --(probe fails)--> ``open``

The breaker itself never raises and never sleeps; callers consult
:meth:`CircuitBreaker.allow` before attempting and report outcomes via
:meth:`record_success` / :meth:`record_failure`. The live state is
exported as the ``repro_client_circuit_state`` gauge (0 closed,
1 half-open, 2 open), so a chaos run's metrics show exactly when the
client gave up on a sick server and when it let it back in.

``clock`` is injectable (default :func:`time.monotonic`) so tests
drive the reset timeout without sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.obs.logging import get_logger
from repro.obs.metrics import get_registry

__all__ = ["CLOSED", "HALF_OPEN", "OPEN", "CircuitBreaker"]

CLOSED = "closed"
HALF_OPEN = "half_open"
OPEN = "open"

_STATE_VALUE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """Three-state circuit breaker (thread-safe, clock-injectable).

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip the circuit open.
    reset_timeout:
        Seconds the circuit stays open before a half-open probe is
        allowed through.
    clock:
        Monotonic time source (injectable for tests).
    on_state:
        Optional observer called with the state *value* (0 closed,
        1 half-open, 2 open) on every transition. The sharded router
        uses it to mirror each replica's breaker into the labelled
        ``repro_router_replica_state`` gauge; without it the breaker
        keeps the historical unlabelled client gauge.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        on_state: Optional[Callable[[int], None]] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout <= 0:
            raise ValueError(
                f"reset_timeout must be > 0, got {reset_timeout}"
            )
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        if on_state is not None:
            self._publish = on_state
        else:
            gauge = get_registry().gauge(
                "repro_client_circuit_state",
                help="Client circuit breaker state (0 closed, 1 half-open, 2 open).",
            )
            self._publish = gauge.set
        self._publish(0)

    @property
    def state(self) -> str:
        """The current state, advancing open -> half-open on its own."""
        with self._lock:
            return self._tick()

    def allow(self) -> bool:
        """Whether a call may be attempted right now.

        Closed admits everything; open admits nothing; half-open admits
        exactly one in-flight probe at a time.
        """
        with self._lock:
            state = self._tick()
            if state == CLOSED:
                return True
            if state == OPEN:
                return False
            if self._probing:
                return False
            self._probing = True
            return True

    def record_success(self) -> None:
        """A call completed: close the circuit, forget past failures."""
        with self._lock:
            if self._state != CLOSED:
                get_logger().log("circuit_closed", after_failures=self._failures)
            self._set_state(CLOSED)
            self._failures = 0
            self._probing = False

    def record_failure(self) -> None:
        """A call failed: count it; trip open at the threshold."""
        with self._lock:
            state = self._tick()
            self._failures += 1
            self._probing = False
            if state == HALF_OPEN or self._failures >= self.failure_threshold:
                if self._state != OPEN:
                    get_logger().log(
                        "circuit_opened", consecutive_failures=self._failures
                    )
                self._set_state(OPEN)
                self._opened_at = self._clock()

    # -- internal (callers hold self._lock) ----------------------------- #

    def _tick(self) -> str:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._set_state(HALF_OPEN)
            self._probing = False
        return self._state

    def _set_state(self, state: str) -> None:
        self._state = state
        self._publish(_STATE_VALUE[state])
