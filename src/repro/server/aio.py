"""The sharded asyncio front end: one event loop, N replica processes.

``repro-swaps serve --replicas N`` swaps the single threaded server
for this topology::

                        +-> replica-0 (SwapServer, own cache/surface)
    clients --> router -+-> replica-1
      (asyncio, 1 loop) +-> ...

The router owns the listen socket and does no solving: it parses each
HTTP/1.1 request non-blockingly, applies the same bounded admission
gate as the threaded server (:class:`~repro.server.app.AdmissionGate`),
derives the request's canonical routing key
(:func:`~repro.server.router.routing_key`) and proxies the raw bytes
to the replica owning that keyslice on a consistent-hash ring
(:class:`~repro.server.router.HashRing`). Identical requests therefore
always land on the same shard, so every shard's two-tier cache and
surface stay hot for *its* slice of the keyspace -- adding shards
multiplies cache capacity instead of diluting it.

Failure handling is ring-order failover: a replica that refuses a
connection, breaks mid-proxy, or is declared dead by the
``replica_down`` fault kind gets its per-replica circuit breaker
(:class:`~repro.server.circuit.CircuitBreaker`) debited and the
request re-routed to the next distinct node on the ring -- the shard
that would inherit the keyslice anyway -- counted in
``repro_router_reroutes_total``. Only when every replica fails does
the client see ``503 no_replica`` (retryable).

With ``config.probe_interval`` set the router also probes each
replica's ``/readyz`` *actively* on that cadence: after
``config.probe_failures`` consecutive failures the replica is ejected
from the hash ring (its keyslice re-homes wholesale, so traffic stops
paying the breaker's discovery latency), and the next successful probe
readmits it. Every probe result lands in
``repro_router_probe_total{replica,outcome}`` with outcomes ``ok``,
``fail``, ``eject`` and ``readmit``. The passive breaker stays on
regardless -- probes catch replicas that die *between* requests,
breakers catch ones that fail *during* them.

Byte parity with the threaded server is a design invariant, not an
aspiration: on-path requests are answered by an unmodified
:class:`~repro.server.app.SwapServer` and relayed verbatim, and every
router-originated rejection (413/429/503/504, bad routes, bad bodies)
is built from the same typed constructors in
:mod:`repro.server.wire` with the same config values -- the parity
suite compares the two front ends response-for-response.

Everything is stdlib: ``asyncio.start_server`` for the acceptor,
blocking work (there is none beyond proxying) never touches the loop,
and replica connections are pooled and kept alive so a warm request
costs one read/write pair per side.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import threading
import time
from collections import OrderedDict
from hashlib import blake2b
from typing import Callable, Dict, List, Optional, Sequence, Tuple
from urllib.parse import urlsplit

from repro.faults.injector import NULL_INJECTOR, build_injector
from repro.obs.exporters import to_prometheus_text, write_metrics
from repro.obs.logging import get_logger
from repro.obs.metrics import get_registry
from repro.server.app import _API_ROUTES, _KNOWN_PATHS
from repro.server.circuit import CircuitBreaker
from repro.server.config import ServerConfig
from repro.server.metrics import HTTPMetrics, RouterMetrics, SupervisorMetrics
from repro.server.overload import CostAwareGate, route_weight
from repro.server.replica import ReplicaSet, ReplicaSupervisor
from repro.server.router import HashRing, routing_key
from repro.server.wire import (
    DeadlineExceededError,
    admin_unavailable_error,
    body_too_large_error,
    chunked_body_error,
    conflict_error,
    deadline_message,
    draining_error,
    envelope_bytes,
    malformed_length_error,
    method_not_allowed_error,
    missing_length_error,
    no_replica_error,
    not_found_error,
    queue_full_error,
    unauthorized_error,
)
from repro.service.errors import ServiceErrorInfo
from repro.service.keys import KEY_VERSION
from repro.stochastic.law import registered_laws
from repro.swapgraph.metrics import observe_graph_request

__all__ = ["RouterServer", "serve_sharded"]

_REASONS = {
    200: "OK", 400: "Bad Request", 403: "Forbidden", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 411: "Length Required",
    413: "Request Entity Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}
_MAX_IDLE_PER_REPLICA = 64
_DEADLINE_GRACE = 1.0  # let the replica's own 504 win the race
# idempotent routes the router-side response LRU may serve without
# proxying; /v1/batch is excluded (large bodies, in-band errors)
_CACHEABLE_PATHS = ("/v1/solve", "/v1/validate", "/v1/sweep", "/v1/swap-graph")
_SUPERVISE_TICK = 0.1  # how often the supervisor polls for dead replicas
_READMIT_PROBES = 50  # /readyz attempts (0.1s apart) before giving up


def _package_version() -> str:
    from repro import __version__

    return __version__


class _ReplicaLink:
    """The router's view of one shard: endpoint, breaker, idle conns."""

    def __init__(self, name: str, host: str, port: int, metrics: RouterMetrics) -> None:
        self.name = name
        self.host = host
        self.port = port
        self.inflight = 0  # proxies currently on the wire to this shard
        self.breaker = CircuitBreaker(
            failure_threshold=3,
            reset_timeout=5.0,
            on_state=lambda value: metrics.replica_state.set(
                value, replica=name
            ),
        )
        self.idle: List[Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []

    async def connection(self):
        """An idle pooled connection, or a fresh one."""
        while self.idle:
            reader, writer = self.idle.pop()
            if writer.is_closing():
                continue
            return reader, writer
        return await asyncio.open_connection(self.host, self.port)

    def release(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        reusable: bool,
    ) -> None:
        if reusable and len(self.idle) < _MAX_IDLE_PER_REPLICA:
            self.idle.append((reader, writer))
        else:
            writer.close()

    def close_all(self) -> None:
        while self.idle:
            _reader, writer = self.idle.pop()
            writer.close()


class RouterServer:
    """The asyncio router with the same lifecycle surface as
    :class:`~repro.server.app.SwapServer` (start/shutdown/host/port),
    so tests and :func:`serve_sharded` drive both front ends the same
    way. The event loop runs on a dedicated thread; public methods are
    thread-safe.

    Parameters
    ----------
    config:
        The shared :class:`~repro.server.config.ServerConfig`;
        ``config.replicas`` sets the shard count when the router owns
        its replicas.
    endpoints:
        Optional pre-existing replica endpoints ``[(host, port), ...]``
        (tests route to in-process threaded servers). When given, no
        subprocesses are spawned and ``config.replicas`` is ignored.
    """

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        endpoints: Optional[Sequence[Tuple[str, int]]] = None,
    ) -> None:
        self.config = config if config is not None else ServerConfig(replicas=2)
        self.faults = (
            build_injector(self.config.fault_plan)
            if self.config.fault_plan is not None
            else NULL_INJECTOR
        )
        self._replica_set: Optional[ReplicaSet] = None
        if endpoints is None:
            if self.config.replicas < 1:
                raise ValueError(
                    "RouterServer needs config.replicas >= 1 or explicit "
                    "endpoints"
                )
            self._replica_set = ReplicaSet(self.config, self.config.replicas)
            names = self._replica_set.names
            self._static_endpoints: Optional[List[Tuple[str, int]]] = None
        else:
            names = [f"replica-{i}" for i in range(len(endpoints))]
            self._static_endpoints = [
                (str(host), int(port)) for host, port in endpoints
            ]
            if not self._static_endpoints:
                raise ValueError("endpoints must be non-empty")
        self.metrics = HTTPMetrics()
        self.router_metrics = RouterMetrics(names)
        self.supervisor_metrics = SupervisorMetrics(names)
        target = self.config.overload_target
        if target is None and self.config.deadline is not None:
            target = self.config.deadline / 2.0
        self.gate = CostAwareGate(self.config.queue_depth, target=target)
        self.ring = HashRing(names)
        # request -> routing-key cache: canonicalising a body costs
        # ~25us (JSON parse + service key), a digest lookup ~1us; hot
        # keys repeat by design, so this wins exactly when it matters
        self._route_keys: Dict[Tuple[str, str, bytes], str] = {}
        # the hot-key response LRU (off unless config.router_cache > 0):
        # exact-key 200 replies served without a proxy hop, invalidated
        # wholesale on every topology epoch change
        self._cache_capacity = self.config.router_cache
        self._response_cache: "OrderedDict[Tuple[str, str, bytes], Tuple[int, str, bytes]]" = (
            OrderedDict()
        )
        self._epoch = 1
        self._names = names
        self._links: Dict[str, _ReplicaLink] = {}
        self._ejected: Dict[str, float] = {}  # name -> eject time
        self._removing: set = set()  # admin removals mid-drain
        self._probe_tasks: Dict[str, asyncio.Task] = {}
        self._supervisor: Optional[ReplicaSupervisor] = None
        if self._replica_set is not None and self.config.supervise:
            self._supervisor = ReplicaSupervisor(
                self._replica_set,
                backoff=self.config.restart_backoff,
                cap=self.config.restart_backoff_cap,
                flap_limit=self.config.flap_limit,
                flap_window=self.config.flap_window,
                faults=self.faults,
            )
        self._draining = threading.Event()
        self._ready = threading.Event()
        self._closed = False
        self._failed: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._thread: Optional[threading.Thread] = None
        self._host: Optional[str] = None
        self._port: Optional[int] = None

    # -- state ---------------------------------------------------------- #

    @property
    def host(self) -> str:
        assert self._host is not None, "server not started"
        return self._host

    @property
    def port(self) -> int:
        assert self._port is not None, "server not started"
        return self._port

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    @property
    def ready(self) -> bool:
        return self._ready.is_set() and not self.draining

    @property
    def epoch(self) -> int:
        """The topology version; bumps on every ring membership change."""
        return self._epoch

    @property
    def replica_urls(self) -> List[str]:
        """The shard base URLs, in replica order (the ``/readyz``
        discovery document's source of truth)."""
        return [
            f"http://{link.host}:{link.port}"
            for link in (self._links[name] for name in self._names)
        ]

    # -- lifecycle ------------------------------------------------------ #

    def start(self) -> "RouterServer":
        """Spawn replicas (if owned), bind, serve; returns once ready."""
        if self._replica_set is not None:
            endpoints = self._replica_set.start()
        else:
            endpoints = list(self._static_endpoints or [])
        for name, (host, port) in zip(self._names, endpoints):
            self._links[name] = _ReplicaLink(
                name, host, port, self.router_metrics
            )
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-aio-serve", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._failed is not None:
            self.shutdown(drain=False)
            raise RuntimeError(
                f"router failed to start: {self._failed}"
            ) from self._failed
        return self

    def _run_loop(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._serve())
        finally:
            self._loop.close()

    async def _serve(self) -> None:
        try:
            self._server = await asyncio.start_server(
                self._handle_client,
                host=self.config.host,
                port=self.config.port,
            )
        except OSError as exc:
            self._failed = exc
            self._ready.set()
            return
        sockname = self._server.sockets[0].getsockname()
        self._host, self._port = sockname[0], sockname[1]
        self._stop_future = self._loop.create_future()
        self._ready.set()
        if self.config.probe_interval is not None:
            for name in list(self._names):
                self._start_probe(name)
        supervise_task: Optional[asyncio.Task] = None
        if self._supervisor is not None:
            supervise_task = self._loop.create_task(self._supervise_loop())
        try:
            async with self._server:
                await self._stop_future
        finally:
            tasks = list(self._probe_tasks.values())
            self._probe_tasks.clear()
            if supervise_task is not None:
                tasks.append(supervise_task)
            for task in tasks:
                task.cancel()
            for task in tasks:
                try:
                    await task
                except asyncio.CancelledError:
                    pass

    def shutdown(self, drain: bool = True) -> bool:
        """Stop accepting, drain in-flight proxies, stop the replicas.

        Returns True iff in-flight work finished within
        ``drain_timeout``. Idempotent, callable from any thread.
        """
        if self._closed:
            return True
        self._closed = True
        self._draining.set()
        loop = self._loop
        if loop is not None and not loop.is_closed() and self._ready.is_set():
            def _stop() -> None:
                if self._server is not None:
                    self._server.close()
                for link in self._links.values():
                    link.close_all()
                if not self._stop_future.done():
                    self._stop_future.set_result(None)

            try:
                loop.call_soon_threadsafe(_stop)
            except RuntimeError:
                pass
        drained = self.gate.wait_idle(
            self.config.drain_timeout if drain else 0.0
        )
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        if self._replica_set is not None:
            self._replica_set.stop(drain=drain)
        if self.config.metrics_out is not None:
            write_metrics(self.config.metrics_out)
        self._ready.clear()
        get_logger().log(
            "router_drained", drained=drained, inflight=self.gate.inflight
        )
        return drained

    # -- request handling ----------------------------------------------- #

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except (
                    asyncio.IncompleteReadError,
                    asyncio.LimitOverrunError,
                    ConnectionError,
                ):
                    return
                started = time.perf_counter()
                parsed = self._parse_head(head)
                if parsed is None:
                    return  # unparseable request line: just hang up
                method, target, headers = parsed
                keep_alive = await self._respond(
                    reader, writer, method, target, headers, started
                )
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
            except RuntimeError:
                # a hard shutdown can close the loop while this handler
                # is mid-await; the transport is gone either way
                pass

    @staticmethod
    def _parse_head(
        head: bytes,
    ) -> Optional[Tuple[str, str, Dict[str, str]]]:
        try:
            text = head.decode("latin-1")
            request_line, *header_lines = text.split("\r\n")
            method, target, _version = request_line.split(" ", 2)
        except ValueError:
            return None
        headers: Dict[str, str] = {}
        for line in header_lines:
            if not line:
                continue
            name, _sep, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return method.upper(), target, headers

    async def _respond(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        method: str,
        target: str,
        headers: Dict[str, str],
        started: float,
    ) -> bool:
        """Answer one parsed request; returns keep-alive."""
        path = target.split("?", 1)[0]
        route = path if path in _KNOWN_PATHS else "unknown"

        async def send(
            status: int,
            body: bytes,
            content_type: str = "application/json",
            extra: Optional[Dict[str, str]] = None,
            keep_alive: bool = True,
        ) -> bool:
            head_lines = [
                f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
                f"Server: repro-swaps-router/{_package_version()}",
                f"Content-Type: {content_type}",
                f"Content-Length: {len(body)}",
            ]
            for name, value in (extra or {}).items():
                head_lines.append(f"{name}: {value}")
            if not keep_alive:
                head_lines.append("Connection: close")
            writer.write(
                "\r\n".join(head_lines).encode("latin-1") + b"\r\n\r\n" + body
            )
            await writer.drain()
            elapsed = time.perf_counter() - started
            self.metrics.observe(route, method, status, elapsed, len(body))
            get_logger().log(
                "http_access",
                method=method,
                route=route,
                path=target,
                status=status,
                seconds=round(elapsed, 6),
                bytes=len(body),
                client="router",
            )
            return keep_alive

        async def send_error(
            info: ServiceErrorInfo,
            extra: Optional[Dict[str, str]] = None,
            keep_alive: bool = True,
        ) -> bool:
            status, body = envelope_bytes(info)
            return await send(
                status, body, extra=extra, keep_alive=keep_alive
            )

        # ops routes: answered locally, never gated, served while draining
        if path == "/healthz" and method == "GET":
            return await send(200, _json_bytes({"ok": True, "status": "alive"}))
        if path == "/readyz" and method == "GET":
            return await self._ops_readyz(send, send_error)
        if path == "/version" and method == "GET":
            return await send(
                200,
                _json_bytes(
                    {
                        "ok": True,
                        "server": "repro-swaps",
                        "version": _package_version(),
                        "key_version": KEY_VERSION,
                        "surface": None,
                        "laws": registered_laws(),
                        "role": "router",
                        "replicas": len(self._names),
                    }
                ),
            )
        if path == "/metrics" and method == "GET":
            text = to_prometheus_text(get_registry())
            return await send(
                200,
                text.encode("utf-8"),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )

        if path.startswith("/admin/"):
            return await self._admin(
                send, send_error, reader, method, path, headers
            )

        if (method, path) not in _API_ROUTES:
            if path in _KNOWN_PATHS:
                return await send_error(method_not_allowed_error(method, path))
            return await send_error(not_found_error(path))

        # ---- API routes: body limits, admission, routed proxy -------- #
        body = b""
        if method == "POST":
            if "chunked" in headers.get("transfer-encoding", "").lower():
                return await send_error(chunked_body_error())
            raw_length = headers.get("content-length")
            if raw_length is None:
                return await send_error(missing_length_error())
            try:
                length = int(raw_length)
            except ValueError:
                return await send_error(malformed_length_error(raw_length))
            limit = self.config.max_body_bytes
            if length > limit:
                # refuse without reading; the unread body forces a close
                self.metrics.rejected.inc(reason="body_too_large")
                self.router_metrics.rejected.inc(reason="body_too_large")
                return await send_error(
                    body_too_large_error(length, limit), keep_alive=False
                )
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                return False

        if self.draining:
            self.metrics.rejected.inc(reason="draining")
            self.router_metrics.rejected.inc(reason="draining")
            return await send_error(draining_error(), keep_alive=False)
        token = (method, target, blake2b(body, digest_size=16).digest())
        if self._cache_capacity and path in _CACHEABLE_PATHS:
            hit = self._response_cache.get(token)
            if hit is not None:
                # exact-key hot-path: answered from the router without
                # admission or a proxy hop (a hit costs microseconds)
                self._response_cache.move_to_end(token)
                self.router_metrics.cache_events.inc(event="hit")
                status, content_type, payload = hit
                return await send(status, payload, content_type=content_type)
            self.router_metrics.cache_events.inc(event="miss")
        shed = self.gate.admit(route, target)
        if shed is not None:
            self.metrics.rejected.inc(reason=shed)
            self.router_metrics.rejected.inc(reason=shed)
            # overload shedding wears the same envelope as queue_full:
            # both mean "capacity, retry later", and parity with the
            # threaded stack's 429 bytes is a design invariant
            return await send_error(
                queue_full_error(self.config.queue_depth),
                extra={"Retry-After": "1"},
            )
        cost = route_weight(route, target)
        self.metrics.inflight.inc()
        self.router_metrics.inflight.inc()
        admitted = time.perf_counter()
        try:
            deadline = self.config.deadline
            try:
                if deadline is None:
                    outcome = await self._route_and_proxy(
                        method, target, headers, body, token, started
                    )
                else:
                    outcome = await asyncio.wait_for(
                        self._route_and_proxy(
                            method, target, headers, body, token, started
                        ),
                        timeout=deadline + _DEADLINE_GRACE,
                    )
            except asyncio.TimeoutError:
                self.metrics.rejected.inc(reason="deadline")
                self.router_metrics.rejected.inc(reason="deadline")
                info = ServiceErrorInfo.from_exception(
                    DeadlineExceededError(deadline_message(deadline))
                )
                return await send_error(info)
            if outcome is None:
                self.router_metrics.rejected.inc(reason="no_replica")
                return await send_error(no_replica_error(len(self._names)))
            status, content_type, extra, payload = outcome
            if path == "/v1/swap-graph" and status == 200:
                # the solve itself runs in a replica subprocess whose
                # registry this /metrics cannot see; count the proxied
                # request here so the family exports on the router too
                observe_graph_request("router")
            if (
                self._cache_capacity
                and status == 200
                and path in _CACHEABLE_PATHS
            ):
                self._cache_store(token, status, content_type, payload)
            return await send(
                status, payload, content_type=content_type, extra=extra
            )
        finally:
            self.metrics.inflight.dec()
            self.router_metrics.inflight.dec()
            self.gate.leave(cost)
            self.gate.observe(route, time.perf_counter() - admitted)

    async def _ops_readyz(self, send, send_error) -> bool:
        if self.draining:
            return await send_error(
                ServiceErrorInfo(
                    code="draining", message="server is draining", retryable=True
                ),
                keep_alive=False,
            )
        members = set(self.ring.nodes)
        return await send(
            200,
            _json_bytes(
                {
                    "ok": True,
                    "status": "ready",
                    "surface": None,
                    "laws": registered_laws(),
                    "epoch": self._epoch,
                    "replicas": [
                        {"name": name, "url": url}
                        for name, url in zip(self._names, self.replica_urls)
                        if name in members
                    ],
                }
            ),
        )

    # -- active health probes ------------------------------------------- #

    async def _probe_once(self, link: _ReplicaLink) -> bool:
        """One ``GET /readyz`` against one replica; True iff 200."""
        timeout = min(self.config.probe_interval or 2.0, 2.0)
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(link.host, link.port),
                timeout=timeout,
            )
        except (OSError, asyncio.TimeoutError):
            return False
        try:
            writer.write(
                f"GET /readyz HTTP/1.1\r\n"
                f"Host: {link.host}:{link.port}\r\n"
                f"Connection: close\r\n\r\n".encode("latin-1")
            )
            await writer.drain()
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=timeout
            )
            status = int(head.split(b"\r\n", 1)[0].split(b" ", 2)[1])
            return status == 200
        except (
            OSError,
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
            ValueError,
            IndexError,
        ):
            return False
        finally:
            writer.close()

    @staticmethod
    def _probe_phase(name: str) -> float:
        """This replica's fixed probe phase offset in [0, 1) intervals.

        Derived from the name, not drawn at random: restarts keep the
        same stagger, and N replicas spread over the whole interval
        instead of firing their probes in lockstep (the thundering
        herd would hit every accept queue at the same instant)."""
        digest = blake2b(name.encode("utf-8"), digest_size=4).digest()
        return int.from_bytes(digest, "big") / 2.0 ** 32

    def _start_probe(self, name: str) -> None:
        if self.config.probe_interval is None or name in self._probe_tasks:
            return
        self._probe_tasks[name] = self._loop.create_task(
            self._probe_replica(name)
        )

    def _stop_probe(self, name: str) -> None:
        task = self._probe_tasks.pop(name, None)
        if task is not None:
            task.cancel()

    async def _probe_replica(self, name: str) -> None:
        """One replica's probe loop; ejects/readmits on the ring.

        Runs on the event loop, so ring mutation needs no locking --
        the routed proxy only reads the ring from the same loop.
        """
        interval = self.config.probe_interval
        threshold = self.config.probe_failures
        await asyncio.sleep(self._probe_phase(name) * interval)
        failures = 0
        while not self.draining:
            link = self._links.get(name)
            if link is None:
                return  # replica left the topology
            if name in self._removing:
                await asyncio.sleep(interval)
                continue
            ok = await self._probe_once(link)
            if ok:
                failures = 0
                self.router_metrics.probes.inc(replica=name, outcome="ok")
                restart_pending = (
                    self._supervisor is not None
                    and self._supervisor.pending(name)
                )
                if name in self._ejected and not restart_pending:
                    # supervisor-restarted replicas readmit through the
                    # supervisor's own /readyz gate, not the probe loop
                    self._readmit(name)
            else:
                failures += 1
                self.router_metrics.probes.inc(replica=name, outcome="fail")
                if failures >= threshold and name in self.ring.nodes:
                    self._eject(name, reason="probe")
            await asyncio.sleep(interval)

    # -- topology: epochs, eject/readmit, the response cache ------------- #

    def _bump_epoch(self, reason: str) -> None:
        """Advance the topology version (always on the event loop).

        Every ring membership change lands here: the epoch is what the
        hedging client keys its re-discovery on, and the response cache
        is invalidated wholesale -- a cached reply may belong to a
        keyslice that just re-homed.
        """
        self._epoch += 1
        self.router_metrics.epoch.set(self._epoch)
        self.router_metrics.replicas.set(len(self.ring))
        if self._response_cache:
            self.router_metrics.cache_events.inc(
                len(self._response_cache), event="invalidate"
            )
            self._response_cache.clear()
        self.router_metrics.cache_entries.set(0)
        get_logger().log(
            "router_epoch",
            epoch=self._epoch,
            reason=reason,
            ring=self.ring.nodes,
        )

    def _cache_store(
        self, token, status: int, content_type: str, payload: bytes
    ) -> None:
        cache = self._response_cache
        cache[token] = (status, content_type, payload)
        cache.move_to_end(token)
        while len(cache) > self._cache_capacity:
            cache.popitem(last=False)
            self.router_metrics.cache_events.inc(event="evict")
        self.router_metrics.cache_entries.set(len(cache))

    def _eject(self, name: str, reason: str) -> None:
        """Take a replica off the ring (its keyslice re-homes wholesale)."""
        if name not in self.ring.nodes:
            return
        self.ring.remove(name)
        self._ejected[name] = time.monotonic()
        self.router_metrics.probes.inc(replica=name, outcome="eject")
        self._bump_epoch(f"eject:{reason}")
        get_logger().log("router_eject", replica=name, reason=reason)

    def _readmit(self, name: str) -> None:
        """Put a healthy replica back on the ring."""
        if name in self.ring.nodes:
            return
        self.ring.add(name)
        self._ejected.pop(name, None)
        self.router_metrics.probes.inc(replica=name, outcome="readmit")
        self._bump_epoch("readmit")
        get_logger().log("router_readmit", replica=name)

    # -- the replica supervisor ------------------------------------------ #

    def _note_death(self, name: str) -> None:
        """Record one detected death with the supervisor's policy."""
        assert self._supervisor is not None
        delay = self._supervisor.note_failure(name)
        if delay is None:
            self.supervisor_metrics.parked.set(1, replica=name)
            self.supervisor_metrics.backoff.set(0, replica=name)
            get_logger().log("supervisor_parked", replica=name)
        else:
            self.supervisor_metrics.backoff.set(delay, replica=name)
            get_logger().log(
                "supervisor_backoff", replica=name, delay=round(delay, 4)
            )

    async def _supervise_loop(self) -> None:
        """Detect dead replicas, restart them, readmit after /readyz.

        Death is either process exit (``poll()``) or a probe ejection
        that outlives a full eject cycle (a live-but-wedged process the
        restart also heals, since respawn reaps the old subprocess).
        """
        assert self._supervisor is not None and self._replica_set is not None
        sup = self._supervisor
        probe_grace: Optional[float] = None
        if self.config.probe_interval is not None:
            probe_grace = (
                2.0 * self.config.probe_interval * self.config.probe_failures
            )
        while not self.draining:
            await asyncio.sleep(_SUPERVISE_TICK)
            for name in list(self._replica_set.names):
                if name in self._removing or sup.parked(name):
                    continue
                try:
                    process = self._replica_set.process(name)
                except KeyError:
                    continue
                dead = not process.alive
                stuck = (
                    probe_grace is not None
                    and name in self._ejected
                    and time.monotonic() - self._ejected[name] > probe_grace
                )
                if (dead or stuck) and not sup.pending(name):
                    self._eject(name, reason="death" if dead else "stuck")
                    self._note_death(name)
                    continue
                if sup.due(name):
                    await self._restart_replica(name)

    async def _restart_replica(self, name: str) -> None:
        """One supervised restart: respawn, handshake, /readyz, readmit."""
        assert self._supervisor is not None
        sup = self._supervisor
        try:
            host, port = await self._loop.run_in_executor(
                None, sup.restart, name
            )
        except (RuntimeError, KeyError) as exc:
            # the fresh process died before announcing: another death
            self.supervisor_metrics.failures.inc(replica=name)
            get_logger().log(
                "supervisor_restart_failed", replica=name, error=str(exc)
            )
            sup.note_restarted(name)
            self._note_death(name)
            return
        old = self._links.get(name)
        if old is not None:
            old.close_all()
        link = _ReplicaLink(name, host, port, self.router_metrics)
        self._links[name] = link
        ready = False
        for _attempt in range(_READMIT_PROBES):
            if await self._probe_once(link):
                ready = True
                break
            await asyncio.sleep(0.1)
        if not ready:
            # announced but never turned ready: treat as another death
            self.supervisor_metrics.failures.inc(replica=name)
            get_logger().log("supervisor_not_ready", replica=name)
            sup.note_restarted(name)
            self._note_death(name)
            return
        sup.note_restarted(name)
        self.supervisor_metrics.restarts.inc(replica=name)
        self.supervisor_metrics.backoff.set(0, replica=name)
        self._readmit(name)
        get_logger().log(
            "supervisor_restarted", replica=name, host=host, port=port
        )

    # -- the admin surface: live resharding ------------------------------ #

    async def _admin(
        self, send, send_error, reader, method: str, path: str, headers
    ) -> bool:
        """Authenticated control-plane routes (``/admin/v1/*``).

        Never gated: resharding must work *because* the data plane is
        saturated, not only when it is idle. The body is read before
        any rejection so keep-alive framing survives a 403.
        """
        body = b""
        if method == "POST":
            raw_length = headers.get("content-length")
            if raw_length is None:
                return await send_error(missing_length_error())
            try:
                length = int(raw_length)
            except ValueError:
                return await send_error(malformed_length_error(raw_length))
            limit = self.config.max_body_bytes
            if length > limit:
                self.metrics.rejected.inc(reason="body_too_large")
                return await send_error(
                    body_too_large_error(length, limit), keep_alive=False
                )
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                return False
        token = self.config.admin_token
        if token is None:
            return await send_error(
                unauthorized_error(
                    "admin surface disabled; start the router with "
                    "--admin-token"
                )
            )
        if headers.get("authorization", "") != f"Bearer {token}":
            return await send_error(
                unauthorized_error("bad or missing bearer token")
            )
        if self.faults.enabled and self.faults.fires(
            "admin_partition", key=path
        ):
            return await send_error(admin_unavailable_error())
        if path == "/admin/v1/topology" and method == "GET":
            return await send(200, _json_bytes(self._topology_document()))
        if path == "/admin/v1/replicas" and method == "POST":
            try:
                data = json.loads(body.decode("utf-8"))
                if not isinstance(data, dict):
                    raise ValueError("body must be a JSON object")
            except (ValueError, UnicodeDecodeError) as exc:
                return await send_error(
                    ServiceErrorInfo(code="invalid_request", message=str(exc))
                )
            action = data.get("action")
            if action == "add":
                return await self._admin_add(send, send_error, data)
            if action == "remove":
                return await self._admin_remove(send, send_error, data)
            return await send_error(
                ServiceErrorInfo(
                    code="invalid_request",
                    message=f"action must be 'add' or 'remove', got {action!r}",
                )
            )
        if path in ("/admin/v1/topology", "/admin/v1/replicas"):
            return await send_error(method_not_allowed_error(method, path))
        return await send_error(not_found_error(path))

    def _topology_document(self) -> dict:
        members = set(self.ring.nodes)
        replicas = []
        for name in self._names:
            link = self._links[name]
            entry: Dict[str, object] = {
                "name": name,
                "url": f"http://{link.host}:{link.port}",
                "on_ring": name in members,
                "draining": name in self._removing,
            }
            if self._replica_set is not None:
                try:
                    process = self._replica_set.process(name)
                except KeyError:
                    pass
                else:
                    entry["pid"] = process.pid
                    entry["alive"] = process.alive
            if self._supervisor is not None:
                entry["supervisor"] = self._supervisor.state(name)
            replicas.append(entry)
        return {
            "ok": True,
            "epoch": self._epoch,
            "ring": self.ring.nodes,
            "replicas": replicas,
            "admission": self.gate.snapshot(),
        }

    async def _admin_add(self, send, send_error, data: dict) -> bool:
        url = data.get("url")
        if url is not None:
            # externally managed replica (tests, exotic deployments):
            # the router routes to it but never supervises it
            parts = urlsplit(str(url))
            if parts.hostname is None or parts.port is None:
                return await send_error(
                    ServiceErrorInfo(
                        code="invalid_request",
                        message=f"url must be http://host:port, got {url!r}",
                    )
                )
            name = data.get("name")
            if name is None:
                index = len(self._names)
                while f"replica-{index}" in self._links:
                    index += 1
                name = f"replica-{index}"
            name = str(name)
            if name in self._links:
                return await send_error(
                    conflict_error(f"replica {name!r} already exists")
                )
            host, port = parts.hostname, int(parts.port)
        else:
            if self._replica_set is None:
                return await send_error(
                    ServiceErrorInfo(
                        code="invalid_request",
                        message="router does not own its replicas; pass url",
                    )
                )
            try:
                name, host, port = await self._loop.run_in_executor(
                    None, self._replica_set.add_process
                )
            except (RuntimeError, ValueError) as exc:
                return await send_error(
                    ServiceErrorInfo(
                        code="internal_error",
                        message=f"replica spawn failed: {exc}",
                    )
                )
        link = _ReplicaLink(name, host, port, self.router_metrics)
        self._links[name] = link
        self._names.append(name)
        self.router_metrics.add_replica(name)
        self.supervisor_metrics.add_replica(name)
        # the ring only grows once the newcomer itself answers /readyz
        ready = False
        for _attempt in range(_READMIT_PROBES):
            if await self._probe_once(link):
                ready = True
                break
            await asyncio.sleep(0.1)
        if not ready:
            self._links.pop(name, None)
            self._names.remove(name)
            if self._replica_set is not None and url is None:
                await self._loop.run_in_executor(
                    None, lambda: self._replica_set.remove_process(name, False)
                )
            return await send_error(
                ServiceErrorInfo(
                    code="internal_error",
                    message=f"replica {name} never passed /readyz",
                )
            )
        self.ring.add(name)
        self._bump_epoch("admin_add")
        self._start_probe(name)
        get_logger().log(
            "admin_add", replica=name, url=f"http://{host}:{port}"
        )
        return await send(
            200,
            _json_bytes(
                {
                    "ok": True,
                    "name": name,
                    "url": f"http://{host}:{port}",
                    "epoch": self._epoch,
                }
            ),
        )

    async def _admin_remove(self, send, send_error, data: dict) -> bool:
        name = data.get("name")
        if not isinstance(name, str) or name not in self._links:
            return await send_error(
                ServiceErrorInfo(
                    code="invalid_request",
                    message=f"unknown replica {name!r}",
                )
            )
        if name in self._removing:
            return await send_error(
                conflict_error(f"replica {name!r} is already draining")
            )
        on_ring = name in self.ring.nodes
        if on_ring and len(self.ring) <= 1:
            return await send_error(
                conflict_error("cannot remove the last replica on the ring")
            )
        self._removing.add(name)
        try:
            # phase one: stop routing new keys to the shard
            self._stop_probe(name)
            if on_ring:
                self.ring.remove(name)
                self._bump_epoch("admin_remove")
            if self._supervisor is not None:
                self._supervisor.forget(name)
            # phase two: wait out in-flight proxies on the pooled
            # connections, then SIGTERM (the replica drains internally)
            link = self._links[name]
            drain_deadline = time.monotonic() + self.config.drain_timeout
            while link.inflight > 0 and time.monotonic() < drain_deadline:
                await asyncio.sleep(0.02)
            drained = link.inflight == 0
            link.close_all()
            self._links.pop(name, None)
            self._names.remove(name)
            self._ejected.pop(name, None)
            exit_code: Optional[int] = None
            if (
                self._replica_set is not None
                and name in self._replica_set.names
            ):
                exit_code = await self._loop.run_in_executor(
                    None, lambda: self._replica_set.remove_process(name, True)
                )
            get_logger().log(
                "admin_remove",
                replica=name,
                drained=drained,
                exit_code=exit_code,
            )
            return await send(
                200,
                _json_bytes(
                    {
                        "ok": True,
                        "name": name,
                        "drained": drained,
                        "epoch": self._epoch,
                    }
                ),
            )
        finally:
            self._removing.discard(name)

    # -- the routed proxy ----------------------------------------------- #

    async def _route_and_proxy(
        self,
        method: str,
        target: str,
        headers: Dict[str, str],
        body: bytes,
        token: Tuple[str, str, bytes],
        started: float,
    ) -> Optional[Tuple[int, str, Dict[str, str], bytes]]:
        """Proxy to the key's home shard, failing over in ring order.

        ``None`` means every replica refused -- the caller answers
        ``503 no_replica``.
        """
        key = self._route_keys.get(token)
        if key is None:
            key = routing_key(method, target, body)
            if len(self._route_keys) >= 4096:
                self._route_keys.clear()  # bounded; refills with hot keys
            self._route_keys[token] = key
        deadline = self.config.deadline
        for position, name in enumerate(self.ring.nodes_for(key)):
            link = self._links.get(name)
            if link is None:
                continue  # removed from the topology mid-walk
            if self.faults.enabled and self.faults.fires(
                "replica_down", key=name
            ):
                # the chaos plan declared this shard dead: heal by
                # re-routing to the next ring node, debiting the breaker
                # exactly as an observed connection failure would
                link.breaker.record_failure()
                self.router_metrics.reroutes.inc(reason="replica_down")
                continue
            if not link.breaker.allow():
                self.router_metrics.reroutes.inc(reason="circuit_open")
                continue
            # forward the remaining deadline budget: a replica seeing a
            # burnt budget rejects in microseconds instead of solving a
            # request the router will 504 anyway
            budget: Optional[float] = None
            if deadline is not None:
                budget = max(0.0, deadline - (time.perf_counter() - started))
            proxy_started = time.perf_counter()
            link.inflight += 1
            try:
                outcome = await self._proxy_once(
                    link, method, target, headers, body, budget
                )
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                link.breaker.record_failure()
                self.router_metrics.reroutes.inc(
                    reason="connect_failed" if position == 0 else "proxy_failed"
                )
                continue
            finally:
                link.inflight -= 1
            link.breaker.record_success()
            self.router_metrics.requests.inc(replica=name)
            self.router_metrics.proxy_seconds.observe(
                time.perf_counter() - proxy_started, replica=name
            )
            return outcome
        return None

    async def _proxy_once(
        self,
        link: _ReplicaLink,
        method: str,
        target: str,
        headers: Dict[str, str],
        body: bytes,
        budget: Optional[float] = None,
    ) -> Tuple[int, str, Dict[str, str], bytes]:
        """One request over one (pooled) replica connection.

        Returns ``(status, content_type, relay_headers, body)`` exactly
        as the replica answered -- the body bytes are never touched.
        """
        reader, writer = await link.connection()
        reusable = False
        try:
            request_lines = [
                f"{method} {target} HTTP/1.1",
                f"Host: {link.host}:{link.port}",
                f"Content-Length: {len(body)}",
                "Connection: keep-alive",
            ]
            if budget is not None:
                request_lines.append(f"X-Repro-Deadline: {budget:.6f}")
            content_type = headers.get("content-type")
            if content_type:
                request_lines.append(f"Content-Type: {content_type}")
            writer.write(
                "\r\n".join(request_lines).encode("latin-1")
                + b"\r\n\r\n"
                + body
            )
            await writer.drain()

            head = await reader.readuntil(b"\r\n\r\n")
            text = head.decode("latin-1")
            status_line, *header_lines = text.split("\r\n")
            status = int(status_line.split(" ", 2)[1])
            reply_headers: Dict[str, str] = {}
            for line in header_lines:
                if not line:
                    continue
                name, _sep, value = line.partition(":")
                reply_headers[name.strip().lower()] = value.strip()
            length = int(reply_headers.get("content-length", "0"))
            payload = await reader.readexactly(length) if length else b""
            reusable = (
                reply_headers.get("connection", "").lower() != "close"
            )
            relay: Dict[str, str] = {}
            if "retry-after" in reply_headers:
                relay["Retry-After"] = reply_headers["retry-after"]
            return (
                status,
                reply_headers.get("content-type", "application/json"),
                relay,
                payload,
            )
        finally:
            link.release(reader, writer, reusable)


def _json_bytes(payload: object) -> bytes:
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def serve_sharded(
    config: ServerConfig,
    stop: Optional[threading.Event] = None,
    announce: Optional[Callable[[dict], None]] = None,
) -> int:
    """Run the sharded topology until SIGTERM/SIGINT, then drain.

    The ``--replicas N`` counterpart of :func:`repro.server.app.serve`
    with the same contract: signal handlers when on the main thread, an
    ``announce`` dict once listening (plus a ``replicas`` count), exit
    0 on a clean drain.
    """
    server = RouterServer(config)
    stop = stop if stop is not None else threading.Event()

    def _request_stop(_signum, _frame) -> None:
        stop.set()

    previous: Dict[int, object] = {}
    try:
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                previous[sig] = signal.signal(sig, _request_stop)
            except ValueError:  # not the main thread
                pass
        server.start()
        where = {
            "host": server.host,
            "port": server.port,
            "pid": os.getpid(),
            "replicas": len(server.ring),
        }
        event = {"event": "listening", **where}
        if announce is not None:
            announce(event)
        else:
            print(json.dumps(event, separators=(",", ":")), flush=True)
        get_logger().log("router_listening", **where)
        stop.wait()
        return 0 if server.shutdown(drain=True) else 1
    finally:
        for sig, handler in previous.items():
            try:
                signal.signal(sig, handler)  # type: ignore[arg-type]
            except ValueError:
                pass
