"""The sharded asyncio front end: one event loop, N replica processes.

``repro-swaps serve --replicas N`` swaps the single threaded server
for this topology::

                        +-> replica-0 (SwapServer, own cache/surface)
    clients --> router -+-> replica-1
      (asyncio, 1 loop) +-> ...

The router owns the listen socket and does no solving: it parses each
HTTP/1.1 request non-blockingly, applies the same bounded admission
gate as the threaded server (:class:`~repro.server.app.AdmissionGate`),
derives the request's canonical routing key
(:func:`~repro.server.router.routing_key`) and proxies the raw bytes
to the replica owning that keyslice on a consistent-hash ring
(:class:`~repro.server.router.HashRing`). Identical requests therefore
always land on the same shard, so every shard's two-tier cache and
surface stay hot for *its* slice of the keyspace -- adding shards
multiplies cache capacity instead of diluting it.

Failure handling is ring-order failover: a replica that refuses a
connection, breaks mid-proxy, or is declared dead by the
``replica_down`` fault kind gets its per-replica circuit breaker
(:class:`~repro.server.circuit.CircuitBreaker`) debited and the
request re-routed to the next distinct node on the ring -- the shard
that would inherit the keyslice anyway -- counted in
``repro_router_reroutes_total``. Only when every replica fails does
the client see ``503 no_replica`` (retryable).

With ``config.probe_interval`` set the router also probes each
replica's ``/readyz`` *actively* on that cadence: after
``config.probe_failures`` consecutive failures the replica is ejected
from the hash ring (its keyslice re-homes wholesale, so traffic stops
paying the breaker's discovery latency), and the next successful probe
readmits it. Every probe result lands in
``repro_router_probe_total{replica,outcome}`` with outcomes ``ok``,
``fail``, ``eject`` and ``readmit``. The passive breaker stays on
regardless -- probes catch replicas that die *between* requests,
breakers catch ones that fail *during* them.

Byte parity with the threaded server is a design invariant, not an
aspiration: on-path requests are answered by an unmodified
:class:`~repro.server.app.SwapServer` and relayed verbatim, and every
router-originated rejection (413/429/503/504, bad routes, bad bodies)
is built from the same typed constructors in
:mod:`repro.server.wire` with the same config values -- the parity
suite compares the two front ends response-for-response.

Everything is stdlib: ``asyncio.start_server`` for the acceptor,
blocking work (there is none beyond proxying) never touches the loop,
and replica connections are pooled and kept alive so a warm request
costs one read/write pair per side.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import threading
import time
from hashlib import blake2b
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.faults.injector import NULL_INJECTOR, build_injector
from repro.obs.exporters import to_prometheus_text, write_metrics
from repro.obs.logging import get_logger
from repro.obs.metrics import get_registry
from repro.server.app import _API_ROUTES, _KNOWN_PATHS, AdmissionGate
from repro.server.circuit import CircuitBreaker
from repro.server.config import ServerConfig
from repro.server.metrics import HTTPMetrics, RouterMetrics
from repro.server.replica import ReplicaSet
from repro.server.router import HashRing, routing_key
from repro.server.wire import (
    DeadlineExceededError,
    body_too_large_error,
    chunked_body_error,
    deadline_message,
    draining_error,
    envelope_bytes,
    malformed_length_error,
    method_not_allowed_error,
    missing_length_error,
    no_replica_error,
    not_found_error,
    queue_full_error,
)
from repro.service.errors import ServiceErrorInfo
from repro.service.keys import KEY_VERSION
from repro.stochastic.law import registered_laws
from repro.swapgraph.metrics import observe_graph_request

__all__ = ["RouterServer", "serve_sharded"]

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 411: "Length Required",
    413: "Request Entity Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}
_MAX_IDLE_PER_REPLICA = 64
_DEADLINE_GRACE = 1.0  # let the replica's own 504 win the race


def _package_version() -> str:
    from repro import __version__

    return __version__


class _ReplicaLink:
    """The router's view of one shard: endpoint, breaker, idle conns."""

    def __init__(self, name: str, host: str, port: int, metrics: RouterMetrics) -> None:
        self.name = name
        self.host = host
        self.port = port
        self.breaker = CircuitBreaker(
            failure_threshold=3,
            reset_timeout=5.0,
            on_state=lambda value: metrics.replica_state.set(
                value, replica=name
            ),
        )
        self.idle: List[Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []

    async def connection(self):
        """An idle pooled connection, or a fresh one."""
        while self.idle:
            reader, writer = self.idle.pop()
            if writer.is_closing():
                continue
            return reader, writer
        return await asyncio.open_connection(self.host, self.port)

    def release(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        reusable: bool,
    ) -> None:
        if reusable and len(self.idle) < _MAX_IDLE_PER_REPLICA:
            self.idle.append((reader, writer))
        else:
            writer.close()

    def close_all(self) -> None:
        while self.idle:
            _reader, writer = self.idle.pop()
            writer.close()


class RouterServer:
    """The asyncio router with the same lifecycle surface as
    :class:`~repro.server.app.SwapServer` (start/shutdown/host/port),
    so tests and :func:`serve_sharded` drive both front ends the same
    way. The event loop runs on a dedicated thread; public methods are
    thread-safe.

    Parameters
    ----------
    config:
        The shared :class:`~repro.server.config.ServerConfig`;
        ``config.replicas`` sets the shard count when the router owns
        its replicas.
    endpoints:
        Optional pre-existing replica endpoints ``[(host, port), ...]``
        (tests route to in-process threaded servers). When given, no
        subprocesses are spawned and ``config.replicas`` is ignored.
    """

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        endpoints: Optional[Sequence[Tuple[str, int]]] = None,
    ) -> None:
        self.config = config if config is not None else ServerConfig(replicas=2)
        self.faults = (
            build_injector(self.config.fault_plan)
            if self.config.fault_plan is not None
            else NULL_INJECTOR
        )
        self._replica_set: Optional[ReplicaSet] = None
        if endpoints is None:
            if self.config.replicas < 1:
                raise ValueError(
                    "RouterServer needs config.replicas >= 1 or explicit "
                    "endpoints"
                )
            self._replica_set = ReplicaSet(self.config, self.config.replicas)
            names = self._replica_set.names
            self._static_endpoints: Optional[List[Tuple[str, int]]] = None
        else:
            names = [f"replica-{i}" for i in range(len(endpoints))]
            self._static_endpoints = [
                (str(host), int(port)) for host, port in endpoints
            ]
            if not self._static_endpoints:
                raise ValueError("endpoints must be non-empty")
        self.metrics = HTTPMetrics()
        self.router_metrics = RouterMetrics(names)
        self.gate = AdmissionGate(self.config.queue_depth)
        self.ring = HashRing(names)
        # request -> routing-key cache: canonicalising a body costs
        # ~25us (JSON parse + service key), a digest lookup ~1us; hot
        # keys repeat by design, so this wins exactly when it matters
        self._route_keys: Dict[Tuple[str, str, bytes], str] = {}
        self._names = names
        self._links: Dict[str, _ReplicaLink] = {}
        self._draining = threading.Event()
        self._ready = threading.Event()
        self._closed = False
        self._failed: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._thread: Optional[threading.Thread] = None
        self._host: Optional[str] = None
        self._port: Optional[int] = None

    # -- state ---------------------------------------------------------- #

    @property
    def host(self) -> str:
        assert self._host is not None, "server not started"
        return self._host

    @property
    def port(self) -> int:
        assert self._port is not None, "server not started"
        return self._port

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    @property
    def ready(self) -> bool:
        return self._ready.is_set() and not self.draining

    @property
    def replica_urls(self) -> List[str]:
        """The shard base URLs, in replica order (the ``/readyz``
        discovery document's source of truth)."""
        return [
            f"http://{link.host}:{link.port}"
            for link in (self._links[name] for name in self._names)
        ]

    # -- lifecycle ------------------------------------------------------ #

    def start(self) -> "RouterServer":
        """Spawn replicas (if owned), bind, serve; returns once ready."""
        if self._replica_set is not None:
            endpoints = self._replica_set.start()
        else:
            endpoints = list(self._static_endpoints or [])
        for name, (host, port) in zip(self._names, endpoints):
            self._links[name] = _ReplicaLink(
                name, host, port, self.router_metrics
            )
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-aio-serve", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._failed is not None:
            self.shutdown(drain=False)
            raise RuntimeError(
                f"router failed to start: {self._failed}"
            ) from self._failed
        return self

    def _run_loop(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._serve())
        finally:
            self._loop.close()

    async def _serve(self) -> None:
        try:
            self._server = await asyncio.start_server(
                self._handle_client,
                host=self.config.host,
                port=self.config.port,
            )
        except OSError as exc:
            self._failed = exc
            self._ready.set()
            return
        sockname = self._server.sockets[0].getsockname()
        self._host, self._port = sockname[0], sockname[1]
        self._stop_future = self._loop.create_future()
        self._ready.set()
        probe_task: Optional[asyncio.Task] = None
        if self.config.probe_interval is not None:
            probe_task = self._loop.create_task(self._probe_loop())
        try:
            async with self._server:
                await self._stop_future
        finally:
            if probe_task is not None:
                probe_task.cancel()
                try:
                    await probe_task
                except asyncio.CancelledError:
                    pass

    def shutdown(self, drain: bool = True) -> bool:
        """Stop accepting, drain in-flight proxies, stop the replicas.

        Returns True iff in-flight work finished within
        ``drain_timeout``. Idempotent, callable from any thread.
        """
        if self._closed:
            return True
        self._closed = True
        self._draining.set()
        loop = self._loop
        if loop is not None and not loop.is_closed() and self._ready.is_set():
            def _stop() -> None:
                if self._server is not None:
                    self._server.close()
                for link in self._links.values():
                    link.close_all()
                if not self._stop_future.done():
                    self._stop_future.set_result(None)

            try:
                loop.call_soon_threadsafe(_stop)
            except RuntimeError:
                pass
        drained = self.gate.wait_idle(
            self.config.drain_timeout if drain else 0.0
        )
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        if self._replica_set is not None:
            self._replica_set.stop(drain=drain)
        if self.config.metrics_out is not None:
            write_metrics(self.config.metrics_out)
        self._ready.clear()
        get_logger().log(
            "router_drained", drained=drained, inflight=self.gate.inflight
        )
        return drained

    # -- request handling ----------------------------------------------- #

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except (
                    asyncio.IncompleteReadError,
                    asyncio.LimitOverrunError,
                    ConnectionError,
                ):
                    return
                started = time.perf_counter()
                parsed = self._parse_head(head)
                if parsed is None:
                    return  # unparseable request line: just hang up
                method, target, headers = parsed
                keep_alive = await self._respond(
                    reader, writer, method, target, headers, started
                )
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()

    @staticmethod
    def _parse_head(
        head: bytes,
    ) -> Optional[Tuple[str, str, Dict[str, str]]]:
        try:
            text = head.decode("latin-1")
            request_line, *header_lines = text.split("\r\n")
            method, target, _version = request_line.split(" ", 2)
        except ValueError:
            return None
        headers: Dict[str, str] = {}
        for line in header_lines:
            if not line:
                continue
            name, _sep, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return method.upper(), target, headers

    async def _respond(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        method: str,
        target: str,
        headers: Dict[str, str],
        started: float,
    ) -> bool:
        """Answer one parsed request; returns keep-alive."""
        path = target.split("?", 1)[0]
        route = path if path in _KNOWN_PATHS else "unknown"

        async def send(
            status: int,
            body: bytes,
            content_type: str = "application/json",
            extra: Optional[Dict[str, str]] = None,
            keep_alive: bool = True,
        ) -> bool:
            head_lines = [
                f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
                f"Server: repro-swaps-router/{_package_version()}",
                f"Content-Type: {content_type}",
                f"Content-Length: {len(body)}",
            ]
            for name, value in (extra or {}).items():
                head_lines.append(f"{name}: {value}")
            if not keep_alive:
                head_lines.append("Connection: close")
            writer.write(
                "\r\n".join(head_lines).encode("latin-1") + b"\r\n\r\n" + body
            )
            await writer.drain()
            elapsed = time.perf_counter() - started
            self.metrics.observe(route, method, status, elapsed, len(body))
            get_logger().log(
                "http_access",
                method=method,
                route=route,
                path=target,
                status=status,
                seconds=round(elapsed, 6),
                bytes=len(body),
                client="router",
            )
            return keep_alive

        async def send_error(
            info: ServiceErrorInfo,
            extra: Optional[Dict[str, str]] = None,
            keep_alive: bool = True,
        ) -> bool:
            status, body = envelope_bytes(info)
            return await send(
                status, body, extra=extra, keep_alive=keep_alive
            )

        # ops routes: answered locally, never gated, served while draining
        if path == "/healthz" and method == "GET":
            return await send(200, _json_bytes({"ok": True, "status": "alive"}))
        if path == "/readyz" and method == "GET":
            return await self._ops_readyz(send, send_error)
        if path == "/version" and method == "GET":
            return await send(
                200,
                _json_bytes(
                    {
                        "ok": True,
                        "server": "repro-swaps",
                        "version": _package_version(),
                        "key_version": KEY_VERSION,
                        "surface": None,
                        "laws": registered_laws(),
                        "role": "router",
                        "replicas": len(self._names),
                    }
                ),
            )
        if path == "/metrics" and method == "GET":
            text = to_prometheus_text(get_registry())
            return await send(
                200,
                text.encode("utf-8"),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )

        if (method, path) not in _API_ROUTES:
            if path in _KNOWN_PATHS:
                return await send_error(method_not_allowed_error(method, path))
            return await send_error(not_found_error(path))

        # ---- API routes: body limits, admission, routed proxy -------- #
        body = b""
        if method == "POST":
            if "chunked" in headers.get("transfer-encoding", "").lower():
                return await send_error(chunked_body_error())
            raw_length = headers.get("content-length")
            if raw_length is None:
                return await send_error(missing_length_error())
            try:
                length = int(raw_length)
            except ValueError:
                return await send_error(malformed_length_error(raw_length))
            limit = self.config.max_body_bytes
            if length > limit:
                # refuse without reading; the unread body forces a close
                self.metrics.rejected.inc(reason="body_too_large")
                self.router_metrics.rejected.inc(reason="body_too_large")
                return await send_error(
                    body_too_large_error(length, limit), keep_alive=False
                )
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                return False

        if self.draining:
            self.metrics.rejected.inc(reason="draining")
            self.router_metrics.rejected.inc(reason="draining")
            return await send_error(draining_error(), keep_alive=False)
        if not self.gate.try_enter():
            self.metrics.rejected.inc(reason="queue_full")
            self.router_metrics.rejected.inc(reason="queue_full")
            return await send_error(
                queue_full_error(self.config.queue_depth),
                extra={"Retry-After": "1"},
            )
        self.metrics.inflight.inc()
        self.router_metrics.inflight.inc()
        try:
            deadline = self.config.deadline
            try:
                if deadline is None:
                    outcome = await self._route_and_proxy(
                        method, target, headers, body
                    )
                else:
                    outcome = await asyncio.wait_for(
                        self._route_and_proxy(method, target, headers, body),
                        timeout=deadline + _DEADLINE_GRACE,
                    )
            except asyncio.TimeoutError:
                self.metrics.rejected.inc(reason="deadline")
                self.router_metrics.rejected.inc(reason="deadline")
                info = ServiceErrorInfo.from_exception(
                    DeadlineExceededError(deadline_message(deadline))
                )
                return await send_error(info)
            if outcome is None:
                self.router_metrics.rejected.inc(reason="no_replica")
                return await send_error(no_replica_error(len(self._names)))
            status, content_type, extra, payload = outcome
            if path == "/v1/swap-graph" and status == 200:
                # the solve itself runs in a replica subprocess whose
                # registry this /metrics cannot see; count the proxied
                # request here so the family exports on the router too
                observe_graph_request("router")
            return await send(
                status, payload, content_type=content_type, extra=extra
            )
        finally:
            self.metrics.inflight.dec()
            self.router_metrics.inflight.dec()
            self.gate.leave()

    async def _ops_readyz(self, send, send_error) -> bool:
        if self.draining:
            return await send_error(
                ServiceErrorInfo(
                    code="draining", message="server is draining", retryable=True
                ),
                keep_alive=False,
            )
        return await send(
            200,
            _json_bytes(
                {
                    "ok": True,
                    "status": "ready",
                    "surface": None,
                    "laws": registered_laws(),
                    "replicas": [
                        {"name": name, "url": url}
                        for name, url in zip(self._names, self.replica_urls)
                    ],
                }
            ),
        )

    # -- active health probes ------------------------------------------- #

    async def _probe_once(self, link: _ReplicaLink) -> bool:
        """One ``GET /readyz`` against one replica; True iff 200."""
        timeout = min(self.config.probe_interval or 2.0, 2.0)
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(link.host, link.port),
                timeout=timeout,
            )
        except (OSError, asyncio.TimeoutError):
            return False
        try:
            writer.write(
                f"GET /readyz HTTP/1.1\r\n"
                f"Host: {link.host}:{link.port}\r\n"
                f"Connection: close\r\n\r\n".encode("latin-1")
            )
            await writer.drain()
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=timeout
            )
            status = int(head.split(b"\r\n", 1)[0].split(b" ", 2)[1])
            return status == 200
        except (
            OSError,
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
            ValueError,
            IndexError,
        ):
            return False
        finally:
            writer.close()

    async def _probe_loop(self) -> None:
        """Actively probe every replica; eject/readmit on the ring.

        Runs on the event loop, so ring mutation needs no locking --
        the routed proxy only reads the ring from the same loop.
        """
        interval = self.config.probe_interval
        threshold = self.config.probe_failures
        failures = {name: 0 for name in self._names}
        ejected: set = set()
        while not self.draining:
            for name in self._names:
                ok = await self._probe_once(self._links[name])
                if ok:
                    failures[name] = 0
                    self.router_metrics.probes.inc(
                        replica=name, outcome="ok"
                    )
                    if name in ejected:
                        ejected.discard(name)
                        self.ring.add(name)
                        self.router_metrics.probes.inc(
                            replica=name, outcome="readmit"
                        )
                        self.router_metrics.replicas.set(len(self.ring))
                        get_logger().log("router_readmit", replica=name)
                else:
                    failures[name] += 1
                    self.router_metrics.probes.inc(
                        replica=name, outcome="fail"
                    )
                    if failures[name] >= threshold and name not in ejected:
                        ejected.add(name)
                        self.ring.remove(name)
                        self.router_metrics.probes.inc(
                            replica=name, outcome="eject"
                        )
                        self.router_metrics.replicas.set(len(self.ring))
                        get_logger().log(
                            "router_eject",
                            replica=name,
                            failures=failures[name],
                        )
            await asyncio.sleep(interval)

    # -- the routed proxy ----------------------------------------------- #

    async def _route_and_proxy(
        self,
        method: str,
        target: str,
        headers: Dict[str, str],
        body: bytes,
    ) -> Optional[Tuple[int, str, Dict[str, str], bytes]]:
        """Proxy to the key's home shard, failing over in ring order.

        ``None`` means every replica refused -- the caller answers
        ``503 no_replica``.
        """
        token = (method, target, blake2b(body, digest_size=16).digest())
        key = self._route_keys.get(token)
        if key is None:
            key = routing_key(method, target, body)
            if len(self._route_keys) >= 4096:
                self._route_keys.clear()  # bounded; refills with hot keys
            self._route_keys[token] = key
        for position, name in enumerate(self.ring.nodes_for(key)):
            link = self._links[name]
            if self.faults.enabled and self.faults.fires(
                "replica_down", key=name
            ):
                # the chaos plan declared this shard dead: heal by
                # re-routing to the next ring node, debiting the breaker
                # exactly as an observed connection failure would
                link.breaker.record_failure()
                self.router_metrics.reroutes.inc(reason="replica_down")
                continue
            if not link.breaker.allow():
                self.router_metrics.reroutes.inc(reason="circuit_open")
                continue
            proxy_started = time.perf_counter()
            try:
                outcome = await self._proxy_once(
                    link, method, target, headers, body
                )
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                link.breaker.record_failure()
                self.router_metrics.reroutes.inc(
                    reason="connect_failed" if position == 0 else "proxy_failed"
                )
                continue
            link.breaker.record_success()
            self.router_metrics.requests.inc(replica=name)
            self.router_metrics.proxy_seconds.observe(
                time.perf_counter() - proxy_started, replica=name
            )
            return outcome
        return None

    async def _proxy_once(
        self,
        link: _ReplicaLink,
        method: str,
        target: str,
        headers: Dict[str, str],
        body: bytes,
    ) -> Tuple[int, str, Dict[str, str], bytes]:
        """One request over one (pooled) replica connection.

        Returns ``(status, content_type, relay_headers, body)`` exactly
        as the replica answered -- the body bytes are never touched.
        """
        reader, writer = await link.connection()
        reusable = False
        try:
            request_lines = [
                f"{method} {target} HTTP/1.1",
                f"Host: {link.host}:{link.port}",
                f"Content-Length: {len(body)}",
                "Connection: keep-alive",
            ]
            content_type = headers.get("content-type")
            if content_type:
                request_lines.append(f"Content-Type: {content_type}")
            writer.write(
                "\r\n".join(request_lines).encode("latin-1")
                + b"\r\n\r\n"
                + body
            )
            await writer.drain()

            head = await reader.readuntil(b"\r\n\r\n")
            text = head.decode("latin-1")
            status_line, *header_lines = text.split("\r\n")
            status = int(status_line.split(" ", 2)[1])
            reply_headers: Dict[str, str] = {}
            for line in header_lines:
                if not line:
                    continue
                name, _sep, value = line.partition(":")
                reply_headers[name.strip().lower()] = value.strip()
            length = int(reply_headers.get("content-length", "0"))
            payload = await reader.readexactly(length) if length else b""
            reusable = (
                reply_headers.get("connection", "").lower() != "close"
            )
            relay: Dict[str, str] = {}
            if "retry-after" in reply_headers:
                relay["Retry-After"] = reply_headers["retry-after"]
            return (
                status,
                reply_headers.get("content-type", "application/json"),
                relay,
                payload,
            )
        finally:
            link.release(reader, writer, reusable)


def _json_bytes(payload: object) -> bytes:
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def serve_sharded(
    config: ServerConfig,
    stop: Optional[threading.Event] = None,
    announce: Optional[Callable[[dict], None]] = None,
) -> int:
    """Run the sharded topology until SIGTERM/SIGINT, then drain.

    The ``--replicas N`` counterpart of :func:`repro.server.app.serve`
    with the same contract: signal handlers when on the main thread, an
    ``announce`` dict once listening (plus a ``replicas`` count), exit
    0 on a clean drain.
    """
    server = RouterServer(config)
    stop = stop if stop is not None else threading.Event()

    def _request_stop(_signum, _frame) -> None:
        stop.set()

    previous: Dict[int, object] = {}
    try:
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                previous[sig] = signal.signal(sig, _request_stop)
            except ValueError:  # not the main thread
                pass
        server.start()
        where = {
            "host": server.host,
            "port": server.port,
            "pid": os.getpid(),
            "replicas": len(server.ring),
        }
        event = {"event": "listening", **where}
        if announce is not None:
            announce(event)
        else:
            print(json.dumps(event, separators=(",", ":")), flush=True)
        get_logger().log("router_listening", **where)
        stop.wait()
        return 0 if server.shutdown(drain=True) else 1
    finally:
        for sig, handler in previous.items():
            try:
                signal.signal(sig, handler)  # type: ignore[arg-type]
            except ValueError:
                pass
