"""The HTTP serving layer: routes, admission control, graceful drain.

A :class:`SwapServer` fronts one :class:`~repro.service.api.SwapService`
with a threaded stdlib HTTP server (``http.server`` -- zero new
dependencies). The surface:

========  =============  =================================================
method    path           behaviour
========  =============  =================================================
POST      ``/v1/solve``     one solve request (JSON body) -> one result
POST      ``/v1/validate``  one Monte Carlo validation -> one result
POST      ``/v1/swap-graph``  one multi-party / packetized swap-graph
                            solve (optional chain replay) -> one result
POST      ``/v1/batch``     JSONL in/out, the ``repro-swaps batch`` format
GET       ``/v1/sweep``     ``?pstars=1.8,2.0&collateral=0&tolerance=1e-3``
                            -> SR per point (``tolerance`` opts into
                            certified surface interpolation)
GET       ``/healthz``      liveness (200 while the process runs)
GET       ``/readyz``       readiness (503 while starting or draining);
                            reports the loaded surface artifact
GET       ``/version``      package + key-schema versions + surface info
GET       ``/metrics``      the live registry, Prometheus text format
========  =============  =================================================

The sweep verb delegates to :meth:`SwapService.sweep`, which routes
down the answer-source chain (:mod:`repro.service.sources`): points a
loaded surface artifact certifies within tolerance are interpolated in
microseconds (``repro_surface_*`` metrics), and remaining cache misses
are answered with one vectorised pass through the grid engine
(:mod:`repro.core.engine`) -- a 256-point curve over the wire costs at
most one array solve, and ``/metrics`` exposes it as the
``repro_grid_*`` family.

Production behaviours, all enforced here rather than left to callers:

* **admission control** -- at most ``queue_depth`` API requests run at
  once; excess load is shed immediately with ``429`` + ``Retry-After``
  (operational endpoints bypass the gate so probes never starve);
* **request limits** -- bodies over ``max_body_bytes`` get ``413``
  without being read; work still running at ``deadline`` seconds is
  abandoned and answered ``504`` (the envelope is ``retryable``);
* **graceful drain** -- :meth:`SwapServer.shutdown` (wired to
  SIGTERM/SIGINT by :func:`serve`) stops accepting, answers new API
  requests ``503 draining``, waits up to ``drain_timeout`` for
  in-flight requests, then flushes metrics to ``metrics_out``;
* **observability** -- every response lands in ``repro_http_*``
  (:mod:`repro.server.metrics`) and emits one structured
  ``http_access`` event through :mod:`repro.obs.logging`.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional
from urllib.parse import parse_qs, urlsplit

from repro.faults.injector import NULL_INJECTOR, build_injector
from repro.obs.exporters import to_prometheus_text, write_metrics
from repro.obs.logging import get_logger
from repro.obs.metrics import get_registry
from repro.server.config import ServerConfig
from repro.server.metrics import HTTPMetrics
from repro.server.wire import (
    DeadlineExceededError,
    ResultReply,
    SweepReply,
    body_too_large_error,
    chunked_body_error,
    deadline_message,
    draining_error,
    error_envelope,
    malformed_length_error,
    method_not_allowed_error,
    missing_length_error,
    not_found_error,
    queue_full_error,
    status_for,
)
from repro.core.parameters import SwapParameters
from repro.service.api import SwapService
from repro.service.errors import ServiceError, ServiceErrorInfo
from repro.service.jsonl import render_records, serve_lines
from repro.service.keys import KEY_VERSION
from repro.service.requests import parse_request
from repro.stochastic.law import parse_law, registered_laws

__all__ = ["AdmissionGate", "SwapServer", "serve"]

_API_ROUTES = {
    ("POST", "/v1/solve"): "_api_solve",
    ("POST", "/v1/validate"): "_api_validate",
    ("POST", "/v1/swap-graph"): "_api_swap_graph",
    ("POST", "/v1/batch"): "_api_batch",
    ("GET", "/v1/sweep"): "_api_sweep",
}
_OPS_ROUTES = {
    ("GET", "/healthz"): "_ops_healthz",
    ("GET", "/readyz"): "_ops_readyz",
    ("GET", "/version"): "_ops_version",
    ("GET", "/metrics"): "_ops_metrics",
}
_KNOWN_PATHS = {path for _method, path in (*_API_ROUTES, *_OPS_ROUTES)}


class _WireError(Exception):
    """Internal: an error envelope to send, with optional headers."""

    def __init__(
        self, info: ServiceErrorInfo, headers: Optional[Dict[str, str]] = None
    ) -> None:
        super().__init__(info.message)
        self.info = info
        self.headers = headers or {}


class AdmissionGate:
    """Bounded concurrent admission with an idle event for draining.

    Shared by both front ends: the threaded :class:`SwapServer` here
    and the asyncio router of :mod:`repro.server.aio` (whose event
    loop only ever touches it from one thread, but the router's proxy
    work happens on executor threads, so the lock stays)."""

    def __init__(self, depth: int) -> None:
        self.depth = int(depth)
        self._lock = threading.Lock()
        self._count = 0
        self._idle = threading.Event()
        self._idle.set()

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._count

    def try_enter(self) -> bool:
        """Admit one request, or refuse immediately when full."""
        with self._lock:
            if self._count >= self.depth:
                return False
            self._count += 1
            self._idle.clear()
            return True

    def leave(self) -> None:
        with self._lock:
            self._count -= 1
            if self._count <= 0:
                self._idle.set()

    def wait_idle(self, timeout: Optional[float]) -> bool:
        """Block until no request is in flight (True iff drained)."""
        return self._idle.wait(timeout)


class _Handler(BaseHTTPRequestHandler):
    """One request; all state lives on ``self.server.owner``."""

    protocol_version = "HTTP/1.1"
    timeout = 60.0  # socket read timeout: abandoned keep-alives expire
    # the handler writes headers and body as separate sends; without
    # TCP_NODELAY, Nagle holds the body until the peer's delayed ACK
    # (~40ms) on every keep-alive request -- fatal for throughput
    disable_nagle_algorithm = True

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #

    @property
    def owner(self) -> "SwapServer":
        return self.server.owner  # type: ignore[attr-defined]

    def version_string(self) -> str:  # Server: header
        return f"repro-swaps/{_package_version()}"

    def log_message(self, format: str, *args: object) -> None:
        # default stderr chatter off; access goes through repro.obs
        pass

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        self._started = time.perf_counter()
        self._method = method
        path = urlsplit(self.path).path
        self._route = path if path in _KNOWN_PATHS else "unknown"
        self._responded = False
        try:
            ops = _OPS_ROUTES.get((method, path))
            if ops is not None:
                getattr(self, ops)()
                return
            if (method, path) in _API_ROUTES:
                self._api(method, path)
                return
            if path in _KNOWN_PATHS:
                self._send_error(method_not_allowed_error(method, path))
                return
            self._send_error(not_found_error(path))
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True
        except Exception as exc:  # never let a bug kill the connection loop
            if not self._responded:
                self._send_error(ServiceErrorInfo.from_exception(exc))
            else:
                self.close_connection = True

    def _send_json(
        self,
        status: int,
        payload: object,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        self._send_bytes(status, body, "application/json", headers)

    def _send_error(
        self,
        info: ServiceErrorInfo,
        headers: Optional[Dict[str, str]] = None,
        status: Optional[int] = None,
    ) -> None:
        self._send_json(
            status if status is not None else status_for(info),
            error_envelope(info),
            headers,
        )

    def _send_bytes(
        self,
        status: int,
        body: bytes,
        content_type: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self._responded = True
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True
        elapsed = time.perf_counter() - self._started
        self.owner.metrics.observe(
            self._route, self._method, status, elapsed, len(body)
        )
        get_logger().log(
            "http_access",
            method=self._method,
            route=self._route,
            path=self.path,
            status=status,
            seconds=round(elapsed, 6),
            bytes=len(body),
            client=self.client_address[0],
        )

    # ------------------------------------------------------------------ #
    # admission, limits, deadline
    # ------------------------------------------------------------------ #

    def _api(self, method: str, path: str) -> None:
        from repro.server.overload import route_weight

        owner = self.owner
        if owner.draining:
            owner.metrics.rejected.inc(reason="draining")
            self.close_connection = True
            self._send_error(draining_error())
            return
        # the router forwards its remaining deadline budget; a request
        # whose budget is provably insufficient is refused here in
        # microseconds instead of burning a worker and 504ing anyway
        self._budget = None
        raw_budget = self.headers.get("X-Repro-Deadline")
        if raw_budget is not None:
            try:
                self._budget = max(0.0, float(raw_budget))
            except ValueError:
                self._budget = None
        shed = owner.gate.admit(path, self.path, self._budget)
        if shed == "deadline":
            owner.metrics.rejected.inc(reason="deadline")
            seconds = (
                owner.config.deadline
                if owner.config.deadline is not None
                else self._budget or 0.0
            )
            self._send_error(
                ServiceErrorInfo.from_exception(
                    DeadlineExceededError(deadline_message(seconds))
                )
            )
            return
        if shed is not None:
            # overload shedding wears the same envelope as queue_full:
            # both mean "capacity, retry later", and the parity suite
            # holds both front ends to identical 429 bytes
            owner.metrics.rejected.inc(reason=shed)
            self._send_error(
                queue_full_error(owner.config.queue_depth),
                headers={"Retry-After": "1"},
            )
            return
        cost = route_weight(path, self.path)
        owner.metrics.inflight.inc()
        admitted = time.perf_counter()
        try:
            if owner.faults.enabled:
                if owner.faults.fires("http_drop", key=self._route):
                    # injected transport failure: vanish without a
                    # response; well-behaved clients see a dropped
                    # connection and retry
                    owner.metrics.rejected.inc(reason="fault_drop")
                    self.close_connection = True
                    return
                owner.faults.sleep("http_slow", key=self._route)
            getattr(self, _API_ROUTES[(method, path)])()
        except _WireError as exc:
            self._send_error(exc.info, headers=exc.headers)
        except ServiceError as exc:
            self._send_error(ServiceErrorInfo.from_exception(exc))
        finally:
            owner.metrics.inflight.dec()
            owner.gate.leave(cost)
            owner.gate.observe(path, time.perf_counter() - admitted)

    def _read_body(self) -> bytes:
        """The request body, bounded by ``max_body_bytes``."""
        if "chunked" in self.headers.get("Transfer-Encoding", "").lower():
            raise _WireError(chunked_body_error())
        raw_length = self.headers.get("Content-Length")
        if raw_length is None:
            raise _WireError(missing_length_error())
        try:
            length = int(raw_length)
        except ValueError:
            raise _WireError(malformed_length_error(raw_length)) from None
        limit = self.owner.config.max_body_bytes
        if length > limit:
            # refuse without reading; the unread body forces a close
            self.owner.metrics.rejected.inc(reason="body_too_large")
            self.close_connection = True
            raise _WireError(body_too_large_error(length, limit))
        return self.rfile.read(length)

    def _json_body(self) -> dict:
        body = self._read_body()
        try:
            data = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _WireError(
                ServiceErrorInfo(code="parse_error", message=str(exc))
            ) from None
        if not isinstance(data, dict):
            raise _WireError(
                ServiceErrorInfo(
                    code="invalid_request",
                    message=f"body must be a JSON object, got {type(data).__name__}",
                )
            )
        return data

    def _with_deadline(self, fn: Callable[[], object]) -> object:
        """Run ``fn``, abandoning it at the configured deadline (504).

        The worker thread is left to finish and its result discarded --
        the stdlib offers no safe preemption -- so a deadline protects
        the *caller's* latency budget, not the server's CPU. A
        forwarded router budget tightens the timer (never the envelope:
        the 504 message always quotes the configured deadline, which
        the parity suite compares byte-for-byte).
        """
        deadline = self.owner.config.deadline
        if deadline is None:
            return fn()
        budget = getattr(self, "_budget", None)
        timer = deadline if budget is None else min(deadline, budget)
        box: dict = {}
        done = threading.Event()

        def _run() -> None:
            try:
                box["value"] = fn()
            except BaseException as exc:  # re-raised in the request thread
                box["error"] = exc
            finally:
                done.set()

        worker = threading.Thread(
            target=_run, name="repro-http-deadline", daemon=True
        )
        worker.start()
        if not done.wait(timer):
            self.owner.metrics.rejected.inc(reason="deadline")
            raise DeadlineExceededError(deadline_message(deadline))
        if "error" in box:
            raise box["error"]
        return box["value"]

    # ------------------------------------------------------------------ #
    # API routes
    # ------------------------------------------------------------------ #

    def _api_solve(self) -> None:
        self._single_request("solve")

    def _api_validate(self) -> None:
        self._single_request("validate")

    def _api_swap_graph(self) -> None:
        self._single_request("swap_graph")

    def _single_request(self, kind: str) -> None:
        data = self._json_body()
        data.setdefault("kind", kind)
        if data["kind"] != kind:
            raise _WireError(
                ServiceErrorInfo(
                    code="invalid_request",
                    message=f"this route only accepts kind={kind!r}, "
                    f"got {data['kind']!r}",
                )
            )
        request = parse_request(data)  # ServiceError -> 400 via _api
        item = self._with_deadline(
            lambda: self.owner.service.run_batch([request])[0]
        )
        if not item.ok:
            self._send_error(item.error)
            return
        self._send_json(200, ResultReply.from_item(kind, item).to_dict())

    def _api_batch(self) -> None:
        body = self._read_body()
        try:
            lines = body.decode("utf-8").splitlines()
        except UnicodeDecodeError as exc:
            raise _WireError(
                ServiceErrorInfo(code="parse_error", message=str(exc))
            ) from None
        _all_parsed, records = self._with_deadline(
            lambda: serve_lines(self.owner.service, lines)
        )
        # one record per line, in-band errors: always 200, like the CLI
        self._send_bytes(
            200,
            render_records(records).encode("utf-8"),
            "application/x-ndjson",
        )

    def _api_sweep(self) -> None:
        query = parse_qs(urlsplit(self.path).query)
        raw = query.get("pstars", [""])[0]
        try:
            pstars = [float(part) for part in raw.split(",") if part.strip()]
            collateral = float(query.get("collateral", ["0"])[0])
            raw_tolerance = query.get("tolerance", [None])[0]
            tolerance = (
                float(raw_tolerance) if raw_tolerance is not None else None
            )
            raw_law = query.get("law", [None])[0]
            params = (
                SwapParameters.default().replace(law=parse_law(raw_law))
                if raw_law
                else None
            )
        except ValueError as exc:
            raise _WireError(
                ServiceErrorInfo(code="invalid_request", message=str(exc))
            ) from None
        if not pstars:
            raise _WireError(
                ServiceErrorInfo(
                    code="invalid_request",
                    message="query must give pstars=<comma-separated floats>",
                )
            )
        items = self._with_deadline(
            lambda: self.owner.service.sweep(
                pstars, params=params, collateral=collateral, tolerance=tolerance
            )
        )
        self._send_json(200, SweepReply.from_items(pstars, items).to_dict())

    # ------------------------------------------------------------------ #
    # operational routes (never gated, served while draining)
    # ------------------------------------------------------------------ #

    def _ops_healthz(self) -> None:
        self._send_json(200, {"ok": True, "status": "alive"})

    def _ops_readyz(self) -> None:
        owner = self.owner
        if owner.draining:
            self._send_error(
                ServiceErrorInfo(
                    code="draining", message="server is draining", retryable=True
                )
            )
            return
        # the surface info lets operators verify *which* artifact this
        # replica answers from (axes, checksum) straight off the probe;
        # the law map, which price laws this build can solve under
        self._send_json(
            200,
            {
                "ok": True,
                "status": "ready",
                "surface": owner.service.surface_info(),
                "laws": registered_laws(),
            },
        )

    def _ops_version(self) -> None:
        self._send_json(
            200,
            {
                "ok": True,
                "server": "repro-swaps",
                "version": _package_version(),
                "key_version": KEY_VERSION,
                "surface": self.owner.service.surface_info(),
                "laws": registered_laws(),
            },
        )

    def _ops_metrics(self) -> None:
        text = to_prometheus_text(get_registry())
        self._send_bytes(
            200,
            text.encode("utf-8"),
            "text/plain; version=0.0.4; charset=utf-8",
        )


def _package_version() -> str:
    from repro import __version__

    return __version__


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True  # drain is bounded by gate.wait_idle, not joins
    allow_reuse_address = True

    def __init__(self, address, handler, owner: "SwapServer") -> None:
        super().__init__(address, handler)
        self.owner = owner


class SwapServer:
    """A :class:`SwapService` behind HTTP, with lifecycle control.

    Parameters
    ----------
    config:
        The :class:`~repro.server.config.ServerConfig`; defaults bind
        ``127.0.0.1:8100`` with a serial service.
    service:
        Optional pre-built service (tests inject slow or failing ones);
        by default one is constructed from the config's cache/worker
        settings.
    """

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        service: Optional[SwapService] = None,
    ) -> None:
        self.config = config if config is not None else ServerConfig()
        if self.config.fault_plan is not None:
            self.faults = build_injector(self.config.fault_plan)
        else:
            self.faults = getattr(service, "faults", NULL_INJECTOR)
        self.service = (
            service
            if service is not None
            else SwapService(
                max_workers=self.config.workers,
                cache_size=self.config.cache_size,
                cache_dir=self.config.cache_dir,
                cache_entries=self.config.cache_entries,
                timeout=self.config.timeout,
                faults=self.faults,
                surface=self.config.surface,
                tolerance=self.config.tolerance,
            )
        )
        # imported here: overload builds on AdmissionGate above, so a
        # module-level import would be circular
        from repro.server.overload import CostAwareGate

        self.metrics = HTTPMetrics()
        target = self.config.overload_target
        if target is None and self.config.deadline is not None:
            target = self.config.deadline / 2.0
        self.gate = CostAwareGate(self.config.queue_depth, target=target)
        self._draining = threading.Event()
        self._ready = threading.Event()
        self._closed = False
        self._thread: Optional[threading.Thread] = None
        self._httpd = _HTTPServer(
            (self.config.host, self.config.port), _Handler, owner=self
        )

    # -- state ---------------------------------------------------------- #

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the OS's pick)."""
        return self._httpd.server_address[1]

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    @property
    def ready(self) -> bool:
        return self._ready.is_set() and not self.draining

    # -- lifecycle ------------------------------------------------------ #

    def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` (blocking; CLI runs this)."""
        self._ready.set()
        try:
            self._httpd.serve_forever(poll_interval=0.05)
        finally:
            self._ready.clear()

    def start(self) -> "SwapServer":
        """Serve on a background thread; returns once listening."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-http-serve", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        return self

    def shutdown(self, drain: bool = True) -> bool:
        """Stop accepting, drain in-flight work, flush metrics.

        Returns True iff every in-flight request finished within
        ``drain_timeout`` (False means stragglers were abandoned).
        Idempotent; safe to call from any thread.
        """
        if self._closed:
            return True
        self._draining.set()
        if self._ready.is_set() or self._thread is not None:
            self._httpd.shutdown()  # stop the accept loop
        drained = self.gate.wait_idle(
            self.config.drain_timeout if drain else 0.0
        )
        if self.config.metrics_out is not None:
            write_metrics(self.config.metrics_out)
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=1.0)
        self._closed = True
        get_logger().log(
            "http_drained", drained=drained, inflight=self.gate.inflight
        )
        return drained


def serve(
    config: Optional[ServerConfig] = None,
    stop: Optional[threading.Event] = None,
    announce: Optional[Callable[[dict], None]] = None,
) -> int:
    """Run a server until SIGTERM/SIGINT (or ``stop``), then drain.

    The blocking entry point behind ``repro-swaps serve``. Signal
    handlers are installed only when running on the main thread (the
    stdlib forbids them elsewhere); ``stop`` is an optional extra
    trigger for embedders and tests. ``announce`` receives one
    ``{"event": "listening", "host", "port", "pid"}`` dict once bound
    (default: printed to stdout as a JSON line, so callers can discover
    an ephemeral port). Returns 0 on a clean drain, 1 if in-flight
    requests had to be abandoned.

    When ``config.replicas > 0`` the call delegates to
    :func:`repro.server.aio.serve_sharded`: the asyncio router binds
    the listen socket and this process's port, and N replica
    subprocesses (each an unmodified :class:`SwapServer`) do the
    solving. Same contract either way.
    """
    if config is not None and config.replicas > 0:
        from repro.server.aio import serve_sharded

        return serve_sharded(config, stop=stop, announce=announce)
    server = SwapServer(config)
    stop = stop if stop is not None else threading.Event()

    def _request_stop(_signum, _frame) -> None:
        stop.set()

    previous: Dict[int, object] = {}
    try:
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                previous[sig] = signal.signal(sig, _request_stop)
            except ValueError:  # not the main thread
                pass
        server.start()
        where = {"host": server.host, "port": server.port, "pid": os.getpid()}
        event = {"event": "listening", **where}
        if announce is not None:
            announce(event)
        else:
            print(json.dumps(event, separators=(",", ":")), flush=True)
        get_logger().log("http_listening", **where)
        stop.wait()
        return 0 if server.shutdown(drain=True) else 1
    finally:
        for sig, handler in previous.items():
            try:
                signal.signal(sig, handler)  # type: ignore[arg-type]
            except ValueError:
                pass
