"""The HTTP layer's registry instruments (``repro_http_*``).

Bound once per server against the active :mod:`repro.obs` registry and
rendered live by ``GET /metrics``. Route labels are always one of the
fixed route patterns (unknown paths collapse to ``unknown``), so label
cardinality stays bounded no matter what clients request.
"""

from __future__ import annotations

from typing import Tuple

from repro.obs.metrics import get_registry

__all__ = ["HTTPMetrics", "RESPONSE_BYTE_BUCKETS"]

# response sizes: 64 B .. 4 MiB, x4 apart (envelopes at the bottom,
# JSONL batch responses at the top)
RESPONSE_BYTE_BUCKETS: Tuple[float, ...] = (
    64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0, 4194304.0,
)


class HTTPMetrics:
    """The serving layer's instruments, get-or-created once."""

    def __init__(self) -> None:
        registry = get_registry()
        self.requests = registry.counter(
            "repro_http_requests_total",
            help="HTTP requests served, by route, method and status.",
            labelnames=("route", "method", "status"),
        )
        self.request_seconds = registry.histogram(
            "repro_http_request_seconds",
            help="Wall-clock request latency, by route.",
            labelnames=("route",),
        )
        self.response_bytes = registry.histogram(
            "repro_http_response_bytes",
            help="Response body size, by route.",
            labelnames=("route",),
            buckets=RESPONSE_BYTE_BUCKETS,
        )
        self.inflight = registry.gauge(
            "repro_http_inflight",
            help="API requests currently admitted and executing.",
        )
        self.rejected = registry.counter(
            "repro_http_rejected_total",
            help="Requests shed before execution, by reason.",
            labelnames=("reason",),
        )
        # materialise the shed reasons so /metrics always exports the
        # family, even on a server that has never shed load
        for reason in ("queue_full", "body_too_large", "draining", "deadline"):
            self.rejected.inc(0, reason=reason)

    def observe(
        self, route: str, method: str, status: int, seconds: float, size: int
    ) -> None:
        """Record one completed response."""
        self.requests.inc(route=route, method=method, status=str(status))
        self.request_seconds.observe(seconds, route=route)
        self.response_bytes.observe(float(size), route=route)
