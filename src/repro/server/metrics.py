"""The HTTP layer's registry instruments.

Three families, bound once per process against the active
:mod:`repro.obs` registry and rendered live by ``GET /metrics``:

* ``repro_http_*`` (:class:`HTTPMetrics`) -- per-response accounting
  of either front end (threaded server or asyncio router);
* ``repro_router_*`` (:class:`RouterMetrics`) -- the sharded tier's
  proxy accounting: per-replica traffic and latency, re-routes,
  breaker states;
* ``repro_hedge_*`` (:class:`HedgeMetrics`) -- the replica-aware
  client's hedged-request accounting (which arm won).

Route labels are always one of the fixed route patterns (unknown paths
collapse to ``unknown``) and replica labels one of the fixed replica
names, so label cardinality stays bounded no matter what clients
request.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.obs.metrics import get_registry

__all__ = [
    "HTTPMetrics",
    "RouterMetrics",
    "HedgeMetrics",
    "SupervisorMetrics",
    "RESPONSE_BYTE_BUCKETS",
    "PROXY_SECOND_BUCKETS",
]

# response sizes: 64 B .. 4 MiB, x4 apart (envelopes at the bottom,
# JSONL batch responses at the top)
RESPONSE_BYTE_BUCKETS: Tuple[float, ...] = (
    64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0, 4194304.0,
)


class HTTPMetrics:
    """The serving layer's instruments, get-or-created once."""

    def __init__(self) -> None:
        registry = get_registry()
        self.requests = registry.counter(
            "repro_http_requests_total",
            help="HTTP requests served, by route, method and status.",
            labelnames=("route", "method", "status"),
        )
        self.request_seconds = registry.histogram(
            "repro_http_request_seconds",
            help="Wall-clock request latency, by route.",
            labelnames=("route",),
        )
        self.response_bytes = registry.histogram(
            "repro_http_response_bytes",
            help="Response body size, by route.",
            labelnames=("route",),
            buckets=RESPONSE_BYTE_BUCKETS,
        )
        self.inflight = registry.gauge(
            "repro_http_inflight",
            help="API requests currently admitted and executing.",
        )
        self.rejected = registry.counter(
            "repro_http_rejected_total",
            help="Requests shed before execution, by reason.",
            labelnames=("reason",),
        )
        # materialise the shed reasons so /metrics always exports the
        # family, even on a server that has never shed load
        for reason in ("queue_full", "body_too_large", "draining", "deadline",
                       "overload"):
            self.rejected.inc(0, reason=reason)

    def observe(
        self, route: str, method: str, status: int, seconds: float, size: int
    ) -> None:
        """Record one completed response."""
        self.requests.inc(route=route, method=method, status=str(status))
        self.request_seconds.observe(seconds, route=route)
        self.response_bytes.observe(float(size), route=route)


# proxy hops are loopback TCP: sub-millisecond when warm, tens of
# milliseconds under queueing, whole seconds only when a shard solves
PROXY_SECOND_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1.0, 5.0,
)


class RouterMetrics:
    """The sharded tier's instruments (``repro_router_*``).

    ``replica_names`` fixes the label universe up front: every
    per-replica series is materialised at zero so ``/metrics`` exports
    the full topology from the first scrape, idle shards included.
    """

    def __init__(self, replica_names: Sequence[str]) -> None:
        registry = get_registry()
        self.requests = registry.counter(
            "repro_router_requests_total",
            help="Requests the router proxied, by replica.",
            labelnames=("replica",),
        )
        self.proxy_seconds = registry.histogram(
            "repro_router_proxy_seconds",
            help="Proxy hop latency (connect to last byte), by replica.",
            labelnames=("replica",),
            buckets=PROXY_SECOND_BUCKETS,
        )
        self.reroutes = registry.counter(
            "repro_router_reroutes_total",
            help="Requests moved off their home replica, by reason.",
            labelnames=("reason",),
        )
        self.rejected = registry.counter(
            "repro_router_rejected_total",
            help="Requests the router shed before proxying, by reason.",
            labelnames=("reason",),
        )
        self.inflight = registry.gauge(
            "repro_router_inflight",
            help="Requests currently admitted and proxying.",
        )
        self.replicas = registry.gauge(
            "repro_router_replicas",
            help="Replicas currently on the hash ring.",
        )
        self.replica_state = registry.gauge(
            "repro_router_replica_state",
            help="Per-replica breaker state (0 closed, 1 half-open, 2 open).",
            labelnames=("replica",),
        )
        self.probes = registry.counter(
            "repro_router_probe_total",
            help="Active /readyz probe results, by replica and outcome "
            "(ok, fail, eject, readmit).",
            labelnames=("replica", "outcome"),
        )
        self.epoch = registry.gauge(
            "repro_router_topology_epoch",
            help="Monotonic topology version; bumps on every ring change.",
        )
        self.cache_events = registry.counter(
            "repro_router_cache_events_total",
            help="Router-side response-cache traffic, by event "
            "(hit, miss, evict, invalidate).",
            labelnames=("event",),
        )
        self.cache_entries = registry.gauge(
            "repro_router_cache_entries",
            help="Entries currently in the router-side response cache.",
        )
        for name in replica_names:
            self.add_replica(name)
        for reason in ("replica_down", "connect_failed", "proxy_failed"):
            self.reroutes.inc(0, reason=reason)
        for reason in ("queue_full", "body_too_large", "draining", "deadline",
                       "no_replica", "overload"):
            self.rejected.inc(0, reason=reason)
        for event in ("hit", "miss", "evict", "invalidate"):
            self.cache_events.inc(0, event=event)
        self.epoch.set(1)
        self.replicas.set(len(replica_names))

    def add_replica(self, name: str) -> None:
        """Materialise the per-replica series of a (new) replica at
        zero, so ``/metrics`` exports it from the next scrape."""
        self.requests.inc(0, replica=name)
        self.replica_state.set(0, replica=name)
        for outcome in ("ok", "fail", "eject", "readmit"):
            self.probes.inc(0, replica=name, outcome=outcome)


class SupervisorMetrics:
    """The replica supervisor's instruments (``repro_supervisor_*``).

    One series set per supervised replica, materialised at zero the
    moment the replica is known -- a fleet that has never crashed still
    exports ``repro_supervisor_restarts_total 0``.
    """

    def __init__(self, replica_names: Sequence[str] = ()) -> None:
        registry = get_registry()
        self.restarts = registry.counter(
            "repro_supervisor_restarts_total",
            help="Successful supervisor restarts, by replica.",
            labelnames=("replica",),
        )
        self.failures = registry.counter(
            "repro_supervisor_restart_failures_total",
            help="Restart attempts that died before readmission, by replica.",
            labelnames=("replica",),
        )
        self.backoff = registry.gauge(
            "repro_supervisor_backoff_seconds",
            help="Current restart backoff delay, by replica (0 = healthy).",
            labelnames=("replica",),
        )
        self.parked = registry.gauge(
            "repro_supervisor_parked",
            help="1 when the flap detector gave up on the replica.",
            labelnames=("replica",),
        )
        for name in replica_names:
            self.add_replica(name)

    def add_replica(self, name: str) -> None:
        self.restarts.inc(0, replica=name)
        self.failures.inc(0, replica=name)
        self.backoff.set(0, replica=name)
        self.parked.set(0, replica=name)


class HedgeMetrics:
    """The replica-aware client's hedging instruments (``repro_hedge_*``)."""

    def __init__(self) -> None:
        registry = get_registry()
        self.requests = registry.counter(
            "repro_hedge_requests_total",
            help="Logical requests that launched a hedge arm.",
        )
        self.wins = registry.counter(
            "repro_hedge_wins_total",
            help="Which arm answered first, for hedged requests.",
            labelnames=("arm",),
        )
        for arm in ("primary", "hedge"):
            self.wins.inc(0, arm=arm)
