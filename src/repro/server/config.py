"""Server configuration.

One frozen dataclass carries every knob of the HTTP layer; the
``repro-swaps serve`` flags map onto it one-to-one. Validation happens
at construction so a bad flag fails fast with a clean message instead
of surfacing mid-request.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.deprecation import warn_once

__all__ = ["ServerConfig"]


def _check_positive_int(name: str, value: int) -> int:
    value = int(value)
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return value


def _check_positive_seconds(name: str, value: Optional[float]) -> Optional[float]:
    if value is None:
        return None
    value = float(value)
    if not (math.isfinite(value) and value > 0.0):
        raise ValueError(f"{name} must be finite and > 0, got {value}")
    return value


@dataclass(frozen=True)
class ServerConfig:
    """Every knob of the HTTP serving layer.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` asks the OS for an ephemeral port
        (the bound port is reported once listening).
    workers:
        ``SwapService`` process-pool size (1 = serial in-process).
    replicas:
        ``0`` (default) runs the single threaded server. ``N >= 1``
        runs the sharded topology instead: an asyncio router on
        ``host:port`` consistent-hashing each request's canonical key
        across ``N`` replica subprocesses, each a full threaded server
        with its own service/cache/surface chain
        (:mod:`repro.server.aio`).
    queue_depth:
        Bound on concurrently admitted API requests; excess load is
        shed with ``429`` + ``Retry-After`` instead of queueing without
        limit. Operational endpoints bypass admission.
    max_body_bytes:
        Per-request body-size ceiling; larger uploads get ``413``
        without being read.
    deadline:
        Per-request wall-clock budget in seconds; work still running at
        the deadline is abandoned and the request answers ``504``
        (``None``: no deadline).
    drain_timeout:
        How long a graceful shutdown waits for in-flight requests
        before giving up on them.
    cache_size, cache_dir, cache_entries, timeout:
        Forwarded to :class:`~repro.service.api.SwapService` (memory
        LRU capacity, disk tier directory and entry bound, per-solve
        pool budget).
    metrics_out:
        Optional path; the registry is flushed there in Prometheus text
        format when the server drains.
    fault_plan:
        Optional path to a fault-injection plan
        (:meth:`repro.faults.plan.InjectionPlan.load` format); loaded
        at server construction and shared with the underlying
        :class:`~repro.service.api.SwapService`, so one plan drives
        chaos across the HTTP handler, the cache, and the worker pool.
    surface:
        Optional path to a precomputed surface artifact
        (``repro-swaps warm`` output); forwarded to
        :class:`~repro.service.api.SwapService` as the chain's first
        answer tier. A corrupt artifact degrades (the server starts
        without the tier); a missing path fails construction.
    tolerance:
        Service-wide default answer tolerance for surface
        interpolation; ``None`` keeps tolerance-less requests exact.
        (``surface_tolerance`` is the pre-v1.2 spelling, kept for one
        release behind a warn-once shim.)
    probe_interval:
        Sharded tier only: seconds between active ``/readyz`` probes of
        each replica. ``None`` (default) disables active probing and
        leaves health detection to the passive per-replica circuit
        breaker alone. Probes are phase-staggered per replica so N
        probes never fire in lockstep.
    probe_failures:
        Consecutive probe failures after which a replica is ejected
        from the hash ring (readmitted on the next probe success).
    supervise:
        Sharded tier only: when the router owns its replica
        subprocesses, restart one that dies (process exit, or probe
        ejection that outlives the probe cycle) with capped exponential
        backoff, readmitting it to the ring only after ``/readyz``
        passes. ``False`` restores the frozen-topology behaviour.
    restart_backoff, restart_backoff_cap:
        Supervisor restart delay: ``backoff * 2**n`` seconds after the
        n-th recent death, jittered, capped at ``restart_backoff_cap``.
    flap_limit, flap_window:
        The flap detector: a replica that dies ``flap_limit`` times
        within ``flap_window`` seconds is *parked* -- the supervisor
        gives up on it (``repro_supervisor_parked``) until an operator
        intervenes via the admin surface.
    admin_token:
        Bearer token guarding the router's ``/admin/v1/*`` surface
        (live resharding). ``None`` (default) disables the surface
        entirely -- admin requests answer 403.
    router_cache:
        Sharded tier only: capacity of the router-side exact-key
        response LRU (200-responses of idempotent routes). ``0``
        (default) disables it; every request is proxied to its home
        shard. The cache is invalidated wholesale on every topology
        epoch change.
    overload_target:
        Cost-aware admission: the p95 latency (seconds) above which the
        gate starts CoDel-style shedding at half capacity. ``None``
        (default) derives ``deadline / 2`` when a deadline is set.
    """

    host: str = "127.0.0.1"
    port: int = 8100
    workers: int = 1
    replicas: int = 0
    queue_depth: int = 16
    max_body_bytes: int = 1 << 20
    deadline: Optional[float] = 30.0
    drain_timeout: float = 10.0
    cache_size: int = 4096
    cache_dir: Optional[str] = None
    cache_entries: Optional[int] = None
    timeout: Optional[float] = None
    metrics_out: Optional[str] = None
    fault_plan: Optional[str] = None
    surface: Optional[str] = None
    tolerance: Optional[float] = None
    surface_tolerance: Optional[float] = None
    probe_interval: Optional[float] = None
    probe_failures: int = 3
    supervise: bool = True
    restart_backoff: float = 0.5
    restart_backoff_cap: float = 10.0
    flap_limit: int = 5
    flap_window: float = 30.0
    admin_token: Optional[str] = None
    router_cache: int = 0
    overload_target: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "port", int(self.port))
        if not 0 <= self.port <= 65535:
            raise ValueError(f"port must be in [0, 65535], got {self.port}")
        object.__setattr__(
            self, "workers", _check_positive_int("workers", self.workers)
        )
        object.__setattr__(
            self,
            "queue_depth",
            _check_positive_int("queue_depth", self.queue_depth),
        )
        object.__setattr__(
            self,
            "max_body_bytes",
            _check_positive_int("max_body_bytes", self.max_body_bytes),
        )
        object.__setattr__(
            self, "deadline", _check_positive_seconds("deadline", self.deadline)
        )
        drain = _check_positive_seconds("drain_timeout", self.drain_timeout)
        object.__setattr__(self, "drain_timeout", drain)
        object.__setattr__(
            self, "timeout", _check_positive_seconds("timeout", self.timeout)
        )
        if self.cache_entries is not None:
            object.__setattr__(
                self,
                "cache_entries",
                _check_positive_int("cache_entries", self.cache_entries),
            )
        replicas = int(self.replicas)
        if replicas < 0:
            raise ValueError(f"replicas must be >= 0, got {replicas}")
        object.__setattr__(self, "replicas", replicas)
        object.__setattr__(
            self,
            "probe_interval",
            _check_positive_seconds("probe_interval", self.probe_interval),
        )
        object.__setattr__(
            self,
            "probe_failures",
            _check_positive_int("probe_failures", self.probe_failures),
        )
        object.__setattr__(self, "supervise", bool(self.supervise))
        backoff = _check_positive_seconds("restart_backoff", self.restart_backoff)
        object.__setattr__(self, "restart_backoff", backoff)
        cap = _check_positive_seconds(
            "restart_backoff_cap", self.restart_backoff_cap
        )
        object.__setattr__(self, "restart_backoff_cap", cap)
        object.__setattr__(
            self, "flap_limit", _check_positive_int("flap_limit", self.flap_limit)
        )
        object.__setattr__(
            self,
            "flap_window",
            _check_positive_seconds("flap_window", self.flap_window),
        )
        router_cache = int(self.router_cache)
        if router_cache < 0:
            raise ValueError(
                f"router_cache must be >= 0, got {router_cache}"
            )
        object.__setattr__(self, "router_cache", router_cache)
        object.__setattr__(
            self,
            "overload_target",
            _check_positive_seconds("overload_target", self.overload_target),
        )
        if self.surface_tolerance is not None:
            warn_once(
                "ServerConfig.surface_tolerance",
                "ServerConfig(surface_tolerance=) is deprecated; "
                "pass tolerance= instead",
            )
            if self.tolerance is None:
                object.__setattr__(self, "tolerance", self.surface_tolerance)
            object.__setattr__(self, "surface_tolerance", None)
        if self.tolerance is not None:
            tolerance = float(self.tolerance)
            if not (math.isfinite(tolerance) and tolerance >= 0.0):
                raise ValueError(
                    f"tolerance must be finite and >= 0, got {tolerance}"
                )
            object.__setattr__(self, "tolerance", tolerance)
