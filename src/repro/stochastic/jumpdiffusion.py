"""Merton jump-diffusion price law.

Merton (1976) superimposes compound-Poisson lognormal jumps on GBM:

    d ln P = (mu - sigma^2/2 - lambda kappa) dt + sigma dW + jumps,
    jumps ~ Poisson(lambda dt) count, each jump size Normal(gamma, delta^2),
    kappa = e^{gamma + delta^2/2} - 1  (the mean relative jump size).

The ``- lambda kappa`` compensator makes ``E[P_{t+tau}|P_t] =
P_t e^{mu tau}`` -- the paper's mean identity -- hold under jumps, so
``mu`` keeps its meaning as the *total* expected growth rate.

Conditional on ``N = j`` jumps over the step, ``ln(P'/P)`` is normal, so
the one-step transition is a Poisson mixture of lognormals:

    weight_j = e^{-lambda tau} (lambda tau)^j / j!
    base_j   = (mu - sigma^2/2 - lambda kappa) tau + j gamma
    s_j^2    = sigma^2 tau + j delta^2

We truncate the Poisson tail at certified mass ``<= TAIL_MASS``,
renormalise, and let :func:`repro.stochastic.law._compensate` absorb the
(tiny) truncation bias into a common drift shift so the mean identity is
exact after truncation too.

Degeneracy: ``jump_intensity == 0`` *returns the lognormal kernel
itself*, so the no-jump law matches GBM to the last bit.
"""

from __future__ import annotations

import math
from typing import Mapping, Union

import numpy as np

from repro.stochastic.law import (
    LognormalStepKernel,
    MixtureStepKernel,
    _compensate,
    register_law,
)

__all__ = ["merton_step_kernel", "TAIL_MASS", "MAX_COMPONENTS"]

# Poisson tail mass beyond the kept components; certified by construction.
TAIL_MASS = 1e-12
MAX_COMPONENTS = 512

DEFAULTS = {
    # match repro.marketdata.synthetic.JumpDiffusionGenerator's shape defaults
    "jump_intensity": 0.02,  # lambda: expected jumps per unit time
    "jump_mean": -0.05,  # gamma: mean log jump size
    "jump_std": 0.1,  # delta: log jump size std
}


def _validate(params: Mapping[str, float]) -> None:
    lam = params["jump_intensity"]
    delta = params["jump_std"]
    if lam < 0.0:
        raise ValueError(f"jump_intensity must be >= 0, got {lam}")
    if delta < 0.0:
        raise ValueError(f"jump_std must be >= 0, got {delta}")


def _poisson_weights(rate: float) -> np.ndarray:
    """Poisson pmf over ``0..N`` with tail mass ``<= TAIL_MASS``."""
    weights = [math.exp(-rate)]
    cumulative = weights[0]
    j = 0
    while cumulative < 1.0 - TAIL_MASS and j < MAX_COMPONENTS:
        j += 1
        weights.append(weights[-1] * rate / j)
        cumulative += weights[-1]
    return np.asarray(weights, dtype=float)


def merton_step_kernel(
    params: Mapping[str, float], mu: float, sigma: float, tau: float
) -> Union[LognormalStepKernel, MixtureStepKernel]:
    """Build the Merton one-step kernel (or the exact GBM kernel at lambda=0)."""
    lam = float(params["jump_intensity"])
    gamma = float(params["jump_mean"])
    delta = float(params["jump_std"])
    if lam == 0.0 or (delta == 0.0 and gamma == 0.0):
        # no jumps, or jumps that do nothing: exactly GBM
        return LognormalStepKernel(mu=mu, sigma=sigma, tau=tau)
    kappa = math.exp(gamma + 0.5 * delta * delta) - 1.0
    w = _poisson_weights(lam * tau)
    j = np.arange(w.size, dtype=float)
    bases = (mu - 0.5 * sigma * sigma - lam * kappa) * tau + j * gamma
    stds = np.sqrt(sigma * sigma * tau + j * delta * delta)
    return _compensate("merton", mu, tau, w, bases, stds)


register_law(
    "merton",
    version=1,
    defaults=DEFAULTS,
    validate=_validate,
    build=merton_step_kernel,
)
