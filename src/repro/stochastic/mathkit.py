"""Shared numerical primitives for the stochastic layer.

One home for the helpers that used to be duplicated between
``core/engine.py``, ``stochastic/lognormal.py`` and
``stochastic/quadrature.py``:

* ``norm_cdf`` / ``norm_ppf`` -- the standard normal CDF and quantile,
  written via ``erfc``/``erfcinv`` exactly as the paper writes its price
  CDF (Section III-A);
* ``gauss_legendre_nodes`` -- cached Gauss--Legendre rules shared by the
  scalar and batched expectation integrals;
* ``DEFAULT_QUAD_ORDER`` -- the repo-wide default quadrature order.

``lognormal.py`` and ``quadrature.py`` re-export these names so existing
imports keep working.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Tuple

import numpy as np
from scipy.special import erfc, erfcinv

__all__ = [
    "norm_cdf",
    "norm_ppf",
    "gauss_legendre_nodes",
    "DEFAULT_QUAD_ORDER",
]

_SQRT2 = math.sqrt(2.0)

DEFAULT_QUAD_ORDER = 96


def norm_cdf(x):
    """Standard normal CDF, vectorised, via the complementary error function.

    The paper writes its price CDF (Section III-A) directly in terms of
    ``erfc``; we keep the same formulation.
    """
    return 0.5 * erfc(-np.asarray(x, dtype=float) / _SQRT2)


def norm_ppf(q):
    """Standard normal quantile function (inverse of :func:`norm_cdf`)."""
    q = np.asarray(q, dtype=float)
    if np.any((q <= 0.0) | (q >= 1.0)):
        raise ValueError("quantile argument must lie strictly in (0, 1)")
    return -_SQRT2 * erfcinv(2.0 * q)


@lru_cache(maxsize=32)
def gauss_legendre_nodes(order: int) -> Tuple[np.ndarray, np.ndarray]:
    """Gauss--Legendre nodes and weights on ``[-1, 1]`` (cached)."""
    if order < 1:
        raise ValueError(f"quadrature order must be >= 1, got {order}")
    nodes, weights = np.polynomial.legendre.leggauss(order)
    return nodes, weights
