"""Price observations at the swap's decision times.

The idealized timeline (paper Eq. (13)) pins every event to an offset
from ``t1 = t0``:

    t1 = 0
    t2 = t1 + tau_a          (Bob decides)
    t3 = t2 + tau_b          (Alice decides)
    t4 = t3 + eps_b          (Bob redeems)
    t5 = t3 + tau_b = t_b    (Alice receives Token_b on success)
    t6 = t4 + tau_a = t_a    (Bob receives Token_a on success)
    t7 = t_b + tau_b         (Bob refunded on failure)
    t8 = t_a + tau_a         (Alice refunded on failure)

:class:`DecisionTimeGrid` materialises those offsets for a given
parameter set, and :func:`sample_decision_prices` draws the joint price
vector ``(P_{t1}, P_{t2}, P_{t3}, ...)`` exactly from the GBM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.stochastic.gbm import GeometricBrownianMotion
from repro.stochastic.law import LawSpec, step_kernel
from repro.stochastic.rng import RandomState

__all__ = [
    "DecisionTimeGrid",
    "sample_decision_prices",
    "sample_decision_prices_for_law",
]


@dataclass(frozen=True)
class DecisionTimeGrid:
    """Event times of the idealized swap, as offsets from ``t1 = 0``."""

    tau_a: float
    tau_b: float
    eps_b: float

    def __post_init__(self) -> None:
        if not self.tau_a > 0.0:
            raise ValueError(f"tau_a must be positive, got {self.tau_a}")
        if not self.tau_b > 0.0:
            raise ValueError(f"tau_b must be positive, got {self.tau_b}")
        if not 0.0 < self.eps_b < self.tau_b:
            raise ValueError(
                f"need 0 < eps_b < tau_b (paper Eq. (3)), got "
                f"eps_b={self.eps_b}, tau_b={self.tau_b}"
            )

    @property
    def t1(self) -> float:
        """Alice initiates (also ``t0``)."""
        return 0.0

    @property
    def t2(self) -> float:
        """Bob decides whether to lock Token_b."""
        return self.tau_a

    @property
    def t3(self) -> float:
        """Alice decides whether to reveal the secret."""
        return self.tau_a + self.tau_b

    @property
    def t4(self) -> float:
        """Bob sees the secret in the mempool and redeems."""
        return self.t3 + self.eps_b

    @property
    def t5(self) -> float:
        """Alice receives Token_b on success; equals ``t_b``."""
        return self.t3 + self.tau_b

    @property
    def t6(self) -> float:
        """Bob receives Token_a on success; equals ``t_a``."""
        return self.t4 + self.tau_a

    @property
    def t_a(self) -> float:
        """Expiry of the HTLC on Chain_a."""
        return self.t6

    @property
    def t_b(self) -> float:
        """Expiry of the HTLC on Chain_b."""
        return self.t5

    @property
    def t7(self) -> float:
        """Bob refunded on failure (``t_b + tau_b``)."""
        return self.t_b + self.tau_b

    @property
    def t8(self) -> float:
        """Alice refunded on failure (``t_a + tau_a``)."""
        return self.t_a + self.tau_a

    def decision_times(self) -> Tuple[float, float, float]:
        """The three strategic decision times ``(t1, t2, t3)``."""
        return (self.t1, self.t2, self.t3)

    def all_times(self) -> Tuple[float, ...]:
        """All event times ``t1..t8`` in chronological order."""
        return tuple(
            sorted({self.t1, self.t2, self.t3, self.t4, self.t5, self.t6, self.t7, self.t8})
        )

    def validate_ordering(self) -> None:
        """Assert the chain of inequalities in the paper's Eq. (12)."""
        checks = [
            self.t1 < self.t2,
            self.t2 < self.t3,
            self.t3 < self.t4,
            self.t4 < self.t5 or self.eps_b < self.tau_b,
            self.t5 <= self.t_b,
            self.t6 <= self.t_a,
            self.t_b < self.t7,
            self.t_a < self.t8,
        ]
        if not all(checks):
            raise AssertionError("timeline ordering violated")


def sample_decision_prices(
    process: GeometricBrownianMotion,
    spot: float,
    grid: DecisionTimeGrid,
    rng: RandomState,
    n_paths: int,
    antithetic: bool = False,
) -> np.ndarray:
    """Sample ``(P_{t1}, P_{t2}, P_{t3})`` for ``n_paths`` episodes.

    Returns an array of shape ``(n_paths, 3)``. ``P_{t1}`` equals the
    spot on every path (``t1 = 0``); the later columns are exact GBM
    samples at ``t2`` and ``t3``.
    """
    t1, t2, t3 = grid.decision_times()
    paths = process.sample_path(
        spot, [t2, t3], rng, n_paths=n_paths, antithetic=antithetic
    )
    first = np.full((paths.shape[0], 1), float(spot))
    del t1  # always zero by construction
    return np.hstack([first, paths])


def sample_decision_prices_for_law(
    law: LawSpec,
    mu: float,
    sigma: float,
    spot: float,
    grid: DecisionTimeGrid,
    rng: RandomState,
    n_paths: int,
    antithetic: bool = False,
) -> np.ndarray:
    """Law-aware :func:`sample_decision_prices`.

    The lognormal spec delegates to the GBM path sampler, drawing from
    ``rng`` in the exact order the pre-law code did, so seeded runs under
    the default law are byte-identical. Any other law samples each
    decision step from its one-step transition kernel: a uniform selects
    the mixture component and a normal the within-component increment.
    Antithetic pairs mirror the normal and share the component pick, so
    the variance-reduction pairing survives under mixtures.
    """
    if law.is_lognormal:
        process = GeometricBrownianMotion(mu=mu, sigma=sigma)
        return sample_decision_prices(
            process, spot, grid, rng, n_paths, antithetic=antithetic
        )
    if n_paths < 1:
        raise ValueError(f"n_paths must be >= 1, got {n_paths}")
    if antithetic and n_paths % 2 != 0:
        raise ValueError("antithetic sampling requires an even n_paths")
    if not spot > 0.0:
        raise ValueError(f"spot must be positive, got {spot}")
    kernel_a = step_kernel(law, mu, sigma, grid.tau_a)
    kernel_b = step_kernel(law, mu, sigma, grid.tau_b)
    n_draw = n_paths // 2 if antithetic else n_paths
    u = rng.uniform(size=(n_draw, 2))
    z = rng.standard_normal((n_draw, 2))
    if antithetic:
        u = np.vstack([u, u])
        z = np.vstack([z, -z])
    p2 = kernel_a.sample_from_normal(spot, u[:, 0], z[:, 0])
    p3 = kernel_b.sample_from_normal(p2, u[:, 1], z[:, 1])
    first = np.full(n_paths, float(spot))
    return np.column_stack([first, p2, p3])
