"""2-state regime-switching price law (calm / turbulent volatility).

A hidden 2-state Markov chain modulates the diffusion volatility: state
``calm`` has ``sigma_calm``, state ``turbulent`` has ``sigma_turbulent``,
with per-unit-time switching probabilities ``p_calm_to_turbulent`` and
``p_turbulent_to_calm``. The chain starts each decision step from its
stationary distribution (and is re-drawn independently per step), which
keeps the swap game Markov in the price alone -- the solvers need no
belief state, and Monte Carlo uses the same convention.

Over a step of length ``tau`` we unroll the chain on ``m = round(tau)``
unit sub-steps (clamped to ``[1, 64]``) and integrate out the hidden
path: conditional on spending ``k`` of ``m`` sub-steps turbulent, the
log increment is normal with variance

    s_k^2 = (k sigma_t^2 + (m - k) sigma_c^2) * (tau / m),

so the transition is a phase-type mixture of ``m + 1`` lognormals whose
weights are the occupation-time distribution of the chain (computed by
an exact DP over ``(state, k)``). Per-component drifts are set to
``mu tau - s_k^2 / 2`` so each component -- and therefore the mixture --
preserves ``E[P_{t+tau}|P_t] = P_t e^{mu tau}`` exactly.

This law *ignores* the swap's ambient ``sigma``: its volatility comes
entirely from ``sigma_calm`` / ``sigma_turbulent``.

Degeneracy: ``sigma_calm == sigma_turbulent`` *returns the lognormal
kernel* at that volatility, so a collapsed regime matches GBM to the
last bit.
"""

from __future__ import annotations

from typing import Mapping, Tuple, Union

import numpy as np

from repro.stochastic.law import (
    LognormalStepKernel,
    MixtureStepKernel,
    _compensate,
    register_law,
)

__all__ = ["regime_step_kernel", "occupation_weights", "MAX_SUBSTEPS"]

MAX_SUBSTEPS = 64

DEFAULTS = {
    # match repro.marketdata.synthetic.RegimeSwitchingGenerator's defaults
    "sigma_calm": 0.05,
    "sigma_turbulent": 0.2,
    "p_calm_to_turbulent": 0.02,
    "p_turbulent_to_calm": 0.1,
}


def _validate(params: Mapping[str, float]) -> None:
    for name in ("sigma_calm", "sigma_turbulent"):
        if not params[name] > 0.0:
            raise ValueError(f"{name} must be positive, got {params[name]}")
    for name in ("p_calm_to_turbulent", "p_turbulent_to_calm"):
        p = params[name]
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"{name} must lie in [0, 1], got {p}")


def stationary_turbulent_probability(p_ct: float, p_tc: float) -> float:
    """Stationary probability of the turbulent state (calm if frozen chain)."""
    total = p_ct + p_tc
    if total <= 0.0:
        return 0.0
    return p_ct / total


def occupation_weights(m: int, p_ct: float, p_tc: float) -> np.ndarray:
    """``P[k of m sub-steps are turbulent]`` for ``k = 0..m``.

    Exact DP over ``(current state, turbulent count)``; the initial
    state is drawn from the stationary distribution, and the state of
    each sub-step is the state the chain is *in* during that sub-step.
    """
    if m < 1:
        raise ValueError(f"need at least one sub-step, got {m}")
    pi_t = stationary_turbulent_probability(p_ct, p_tc)
    # calm[k] / turb[k]: P[entering the next sub-step in that state with
    # k turbulent sub-steps spent so far]
    calm = np.zeros(m + 1)
    turb = np.zeros(m + 1)
    calm[0] = 1.0 - pi_t
    turb[0] = pi_t
    for _ in range(m):
        # spend this sub-step: a turbulent sub-step increments the count
        turb = np.roll(turb, 1)
        turb[0] = 0.0
        # then the chain transitions into the next sub-step's state
        calm, turb = (
            calm * (1.0 - p_ct) + turb * p_tc,
            turb * (1.0 - p_tc) + calm * p_ct,
        )
    weights = calm + turb
    total = weights.sum()
    if not np.isfinite(total) or total <= 0.0:
        raise ValueError("degenerate occupation-time distribution")
    return weights / total


def regime_step_kernel(
    params: Mapping[str, float], mu: float, sigma: float, tau: float
) -> Union[LognormalStepKernel, MixtureStepKernel]:
    """Build the regime one-step kernel (or the GBM kernel if regimes agree).

    ``sigma`` (the swap's ambient volatility) is unused -- the regime law
    carries its own volatilities.
    """
    sigma_c = float(params["sigma_calm"])
    sigma_t = float(params["sigma_turbulent"])
    p_ct = float(params["p_calm_to_turbulent"])
    p_tc = float(params["p_turbulent_to_calm"])
    if sigma_c == sigma_t:
        return LognormalStepKernel(mu=mu, sigma=sigma_c, tau=tau)
    m = int(np.clip(round(tau), 1, MAX_SUBSTEPS))
    w = occupation_weights(m, p_ct, p_tc)
    k = np.arange(m + 1, dtype=float)
    variances = (k * sigma_t**2 + (m - k) * sigma_c**2) * (tau / m)
    stds = np.sqrt(variances)
    bases = mu * tau - 0.5 * variances
    # drop zero-weight components (e.g. p_ct == 0 pins the chain calm)
    keep = w > 0.0
    return _compensate("regime", mu, tau, w[keep], bases[keep], stds[keep])


register_law(
    "regime",
    version=1,
    defaults=DEFAULTS,
    validate=_validate,
    build=regime_step_kernel,
)
