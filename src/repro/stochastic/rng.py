"""Reproducible random number streams.

All randomness in the library flows through :class:`RandomState`, a thin
wrapper over :class:`numpy.random.Generator` that

* always requires an explicit seed (no hidden global state), and
* can deterministically *spawn* independent child streams, so that a
  Monte Carlo batch, the agents inside an episode, and the chain
  substrate each draw from non-overlapping streams while the whole run
  remains reproducible from a single integer.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["RandomState", "spawn_streams", "stable_seed"]


class RandomState:
    """A seeded, spawnable random stream.

    Parameters
    ----------
    seed:
        Integer seed, or a :class:`numpy.random.SeedSequence` for
        internal spawning. ``None`` is rejected on purpose: every run of
        the library must be reproducible.
    """

    def __init__(self, seed) -> None:
        if seed is None:
            raise ValueError("RandomState requires an explicit seed")
        if isinstance(seed, np.random.SeedSequence):
            self._seed_seq = seed
        else:
            self._seed_seq = np.random.SeedSequence(int(seed))
        self._generator = np.random.default_rng(self._seed_seq)

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator."""
        return self._generator

    @property
    def entropy(self):
        """The entropy (root seed) of this stream's seed sequence."""
        return self._seed_seq.entropy

    def spawn(self, n: int) -> List["RandomState"]:
        """Create ``n`` statistically independent child streams."""
        if n < 0:
            raise ValueError(f"cannot spawn {n} streams")
        return [RandomState(seq) for seq in self._seed_seq.spawn(n)]

    def standard_normal(self, size=None) -> np.ndarray:
        """Draw standard normal variates."""
        return self._generator.standard_normal(size)

    def uniform(self, low: float = 0.0, high: float = 1.0, size=None):
        """Draw uniform variates on ``[low, high)``."""
        return self._generator.uniform(low, high, size)

    def integers(self, low: int, high: Optional[int] = None, size=None):
        """Draw random integers (numpy semantics)."""
        return self._generator.integers(low, high, size)

    def choice(self, options: Sequence, size=None, replace: bool = True):
        """Choose among ``options``."""
        return self._generator.choice(options, size=size, replace=replace)

    def token_bytes(self, n: int = 32) -> bytes:
        """Draw ``n`` random bytes (used for swap secrets in tests/sims)."""
        return self._generator.bytes(n)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RandomState(entropy={self._seed_seq.entropy})"


def spawn_streams(seed: int, n: int) -> List[RandomState]:
    """Convenience: build ``n`` independent streams from one integer seed."""
    return RandomState(seed).spawn(n)


def stable_seed(*components) -> int:
    """A deterministic 63-bit seed derived from arbitrary components.

    Hashes the ``repr`` of each component (separated so that
    ``("ab", "c")`` and ``("a", "bc")`` differ) through SHA-256 and
    folds the digest into a non-negative ``int64``-safe seed. Unlike
    Python's builtin ``hash`` this is stable across processes and
    interpreter runs, which is what lets the service layer's worker
    pool seed each request from its cache key and still reproduce the
    serial execution exactly.
    """
    digest = hashlib.sha256()
    for component in components:
        digest.update(repr(component).encode("utf-8"))
        digest.update(b"\x1f")
    return int.from_bytes(digest.digest()[:8], "big") >> 1
