"""Root finding and continuation regions.

The backward induction characterises each agent's continuation region as
the set of prices where ``U(cont) - U(stop) > 0``. In the basic model
that set is a single interval (0 or 2 roots); in the collateral model
Section IV shows the indifference equation has an *odd* number of roots
(1 or 3), so the region is a union of intervals.

This module provides

* :func:`sign_change_brackets` -- scan a log-spaced grid for sign
  changes;
* :func:`bracketed_root` -- Brent's method on a verified bracket;
* :func:`find_all_roots` -- all roots on an interval via scan + Brent;
* :class:`IntervalUnion` -- a normalised union of disjoint open
  intervals with membership, measure-under-a-law, and set algebra. The
  continuation regions :math:`\\mathfrak{P}_{t_2}` of the paper are
  represented with this class.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np
from scipy.optimize import brentq

__all__ = [
    "sign_change_brackets",
    "bracketed_root",
    "find_all_roots",
    "grid_sign_change_brackets",
    "bisect_roots",
    "IntervalUnion",
]


def _log_grid(lo: float, hi: float, n: int) -> np.ndarray:
    return np.exp(np.linspace(math.log(lo), math.log(hi), n))


def sign_change_brackets(
    f: Callable[[float], float],
    lo: float,
    hi: float,
    n_scan: int = 400,
) -> List[Tuple[float, float]]:
    """Find sub-intervals of ``(lo, hi)`` where ``f`` changes sign.

    The scan grid is log-spaced (prices live on a multiplicative scale).
    Exact zeros on grid points are attributed to the bracket on their
    left. Returns a list of ``(a, b)`` brackets with ``f(a) f(b) < 0``
    or ``f(b) == 0``.
    """
    if not (lo > 0.0 and hi > lo):
        raise ValueError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
    if n_scan < 2:
        raise ValueError(f"n_scan must be >= 2, got {n_scan}")
    xs = _log_grid(lo, hi, n_scan)
    values = np.array([f(float(x)) for x in xs])
    brackets: List[Tuple[float, float]] = []
    for i in range(len(xs) - 1):
        a, b = float(xs[i]), float(xs[i + 1])
        fa, fb = values[i], values[i + 1]
        if fa == 0.0:
            # zero exactly on a grid point: skip, the previous bracket
            # (if any) already captured it
            continue
        if fb == 0.0 or fa * fb < 0.0:
            brackets.append((a, b))
    return brackets


def bracketed_root(
    f: Callable[[float], float],
    lo: float,
    hi: float,
    xtol: float = 1e-12,
    rtol: float = 1e-12,
) -> float:
    """Brent's method on a bracket known to contain a root.

    Convergence effort is recorded in the active metrics registry:
    ``repro_rootfind_calls_total``, ``repro_rootfind_iterations_total``
    and ``repro_rootfind_function_calls_total`` (Brent's own counts),
    so a sweep's root-finding cost is directly observable.
    """
    from repro.obs.metrics import get_registry

    root, info = brentq(f, lo, hi, xtol=xtol, rtol=rtol, full_output=True)
    registry = get_registry()
    registry.counter(
        "repro_rootfind_calls_total", help="Bracketed Brent root solves."
    ).inc()
    # scipy can report an uninitialised (negative) iteration count when
    # Brent converges on the first probe; clamp before counting
    registry.counter(
        "repro_rootfind_iterations_total",
        help="Brent iterations across all root solves.",
    ).inc(max(int(info.iterations), 0))
    registry.counter(
        "repro_rootfind_function_calls_total",
        help="Objective evaluations across all root solves.",
    ).inc(max(int(info.function_calls), 0))
    return float(root)


def grid_sign_change_brackets(
    grid: np.ndarray,
    values: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sign-change brackets of a whole batch of scans in one pass.

    ``grid`` and ``values`` are ``(batch, n_scan)`` arrays: row ``i``
    holds one pre-evaluated scan. The bracketing rule is exactly
    :func:`sign_change_brackets`'s (a grid-point zero is attributed to
    the bracket on its left), applied to every row at once. Returns the
    flat triple ``(rows, lo, hi)`` where ``rows[j]`` is the batch row
    that bracket ``j`` belongs to; within a row, brackets come out in
    ascending order.
    """
    grid = np.asarray(grid, dtype=float)
    values = np.asarray(values, dtype=float)
    if grid.shape != values.shape or grid.ndim != 2:
        raise ValueError(
            f"grid/values must be equal-shape 2-D arrays, got "
            f"{grid.shape} and {values.shape}"
        )
    va = values[:, :-1]
    vb = values[:, 1:]
    mask = (va != 0.0) & ((vb == 0.0) | (va * vb < 0.0))
    rows, cols = np.nonzero(mask)
    return rows, grid[rows, cols], grid[rows, cols + 1]


def bisect_roots(
    f: Callable[[np.ndarray], np.ndarray],
    lo,
    hi,
    rtol: float = 1e-13,
    max_iter: int = 200,
) -> np.ndarray:
    """Vectorised bisection on a batch of verified brackets.

    ``f`` maps an array of points to an array of values; each
    ``(lo[j], hi[j])`` must bracket a root in the
    :func:`sign_change_brackets` sense (``f(lo) != 0`` and ``f(hi) == 0``
    or a sign change). All brackets are refined simultaneously to a
    relative width of ``rtol`` -- comparable to the ``1e-12`` tolerance
    the scalar Brent path uses -- and an exact zero hit collapses its
    bracket immediately. Effort lands in the same
    ``repro_rootfind_*`` counter families as :func:`bracketed_root`.
    """
    from repro.obs.metrics import get_registry

    lo = np.asarray(lo, dtype=float).copy()
    hi = np.asarray(hi, dtype=float).copy()
    if lo.shape != hi.shape or lo.ndim != 1:
        raise ValueError(
            f"lo/hi must be equal-length 1-D arrays, got {lo.shape} and {hi.shape}"
        )
    if lo.size == 0:
        return lo
    flo = np.asarray(f(lo), dtype=float)
    iterations = 0
    evaluations = lo.size
    for _ in range(max_iter):
        tol = rtol * np.maximum(np.abs(lo), np.abs(hi))
        if np.all(hi - lo <= tol):
            break
        mid = 0.5 * (lo + hi)
        fmid = np.asarray(f(mid), dtype=float)
        iterations += 1
        evaluations += mid.size
        exact = fmid == 0.0
        same_side = fmid * flo > 0.0
        lo = np.where(exact | same_side, mid, lo)
        flo = np.where(same_side, fmid, flo)
        hi = np.where(exact | ~same_side, mid, hi)
    registry = get_registry()
    registry.counter(
        "repro_rootfind_calls_total", help="Bracketed Brent root solves."
    ).inc(lo.size)
    registry.counter(
        "repro_rootfind_iterations_total",
        help="Brent iterations across all root solves.",
    ).inc(iterations * lo.size)
    registry.counter(
        "repro_rootfind_function_calls_total",
        help="Objective evaluations across all root solves.",
    ).inc(evaluations)
    return 0.5 * (lo + hi)


def find_all_roots(
    f: Callable[[float], float],
    lo: float,
    hi: float,
    n_scan: int = 400,
) -> List[float]:
    """All roots of ``f`` on ``(lo, hi)`` resolvable at the scan resolution.

    Roots closer together than the grid spacing may be merged or missed;
    callers choose ``n_scan`` generously relative to the expected number
    of roots (the swap games have at most 3).
    """
    roots = []
    for a, b in sign_change_brackets(f, lo, hi, n_scan):
        roots.append(bracketed_root(f, a, b))
    return sorted(roots)


@dataclass(frozen=True)
class IntervalUnion:
    """A finite union of disjoint intervals of positive prices.

    Intervals are stored half-open ``(lo, hi]``-style for membership
    checks, but the distinction carries no probability mass under a
    continuous law; what matters is the set algebra and measure.
    """

    intervals: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        prev_hi = -math.inf
        for lo, hi in self.intervals:
            if not lo < hi:
                raise ValueError(f"degenerate interval ({lo}, {hi})")
            if lo < prev_hi:
                raise ValueError("intervals must be disjoint and sorted")
            prev_hi = hi

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @staticmethod
    def empty() -> "IntervalUnion":
        """The empty region."""
        return IntervalUnion(())

    @staticmethod
    def single(lo: float, hi: float) -> "IntervalUnion":
        """A single interval ``(lo, hi)``."""
        return IntervalUnion(((lo, hi),))

    @staticmethod
    def from_intervals(pairs: Sequence[Tuple[float, float]]) -> "IntervalUnion":
        """Normalise arbitrary (possibly overlapping/unsorted) pairs."""
        cleaned = sorted((lo, hi) for lo, hi in pairs if lo < hi)
        merged: List[Tuple[float, float]] = []
        for lo, hi in cleaned:
            if merged and lo <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
            else:
                merged.append((lo, hi))
        return IntervalUnion(tuple(merged))

    @staticmethod
    def where_positive(
        f: Callable[[float], float],
        lo: float,
        hi: float,
        n_scan: int = 400,
    ) -> "IntervalUnion":
        """The region of ``(lo, hi)`` where ``f > 0``.

        Built from the roots of ``f`` plus the sign of ``f`` between
        consecutive roots (evaluated at the geometric midpoint).
        """
        roots = find_all_roots(f, lo, hi, n_scan)
        edges = [lo] + roots + [hi]
        keep: List[Tuple[float, float]] = []
        for a, b in zip(edges[:-1], edges[1:]):
            if b <= a:
                continue
            mid = math.sqrt(a * b)
            if f(mid) > 0.0:
                keep.append((a, b))
        return IntervalUnion.from_intervals(keep)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def is_empty(self) -> bool:
        """Whether the region contains no interval."""
        return not self.intervals

    def __contains__(self, x: float) -> bool:
        return any(lo < x <= hi for lo, hi in self.intervals)

    def __len__(self) -> int:
        return len(self.intervals)

    def total_length(self) -> float:
        """Lebesgue measure of the region."""
        return sum(hi - lo for lo, hi in self.intervals)

    def bounds(self) -> Tuple[float, float]:
        """Smallest interval containing the region."""
        if self.is_empty:
            raise ValueError("empty region has no bounds")
        return self.intervals[0][0], self.intervals[-1][1]

    def probability(self, law) -> float:
        """Mass the lognormal ``law`` assigns to the region."""
        return sum(law.probability_between(lo, hi) for lo, hi in self.intervals)

    # ------------------------------------------------------------------ #
    # set algebra
    # ------------------------------------------------------------------ #

    def intersect(self, other: "IntervalUnion") -> "IntervalUnion":
        """Set intersection."""
        out: List[Tuple[float, float]] = []
        for a_lo, a_hi in self.intervals:
            for b_lo, b_hi in other.intervals:
                lo, hi = max(a_lo, b_lo), min(a_hi, b_hi)
                if lo < hi:
                    out.append((lo, hi))
        return IntervalUnion.from_intervals(out)

    def union(self, other: "IntervalUnion") -> "IntervalUnion":
        """Set union."""
        return IntervalUnion.from_intervals(
            list(self.intervals) + list(other.intervals)
        )

    def complement_within(self, lo: float, hi: float) -> "IntervalUnion":
        """Complement of the region inside the window ``(lo, hi)``."""
        if not lo < hi:
            raise ValueError(f"need lo < hi, got {lo}, {hi}")
        gaps: List[Tuple[float, float]] = []
        cursor = lo
        for a, b in self.intervals:
            if b <= lo or a >= hi:
                continue
            if a > cursor:
                gaps.append((cursor, min(a, hi)))
            cursor = max(cursor, b)
        if cursor < hi:
            gaps.append((cursor, hi))
        return IntervalUnion.from_intervals(gaps)
