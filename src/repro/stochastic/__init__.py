"""Stochastic substrate: price processes, distributions, numerics.

This package provides everything the game-theoretic solver and the
Monte Carlo engine need from probability theory and numerical analysis:

* :mod:`repro.stochastic.lognormal` -- the lognormal law of a GBM
  increment, with closed-form CDF, PDF, mean and *partial expectations*
  (the Black--Scholes-style building blocks of the paper's utilities).
* :mod:`repro.stochastic.gbm` -- the geometric Brownian motion of
  Equation (1) of the paper: analytic conditional moments and exact
  sampling of terminal values and paths.
* :mod:`repro.stochastic.quadrature` -- Gauss--Legendre expectation
  integrals over truncated price ranges, scalar and batched.
* :mod:`repro.stochastic.rootfind` -- bracketed root finding (scalar
  Brent and vectorised bisection), all-roots scans, and interval unions
  used to characterise continuation regions.
* :mod:`repro.stochastic.paths` -- vectorised simulation of the price at
  the swap's decision times.
* :mod:`repro.stochastic.rng` -- reproducible random number streams.
"""

from repro.stochastic.gbm import GeometricBrownianMotion
from repro.stochastic.law import (
    LawSpec,
    LognormalStepKernel,
    MixtureLaw,
    MixtureStepKernel,
    parse_law,
    registered_laws,
    step_kernel,
)
from repro.stochastic.lognormal import LognormalLaw, transition_pieces
from repro.stochastic.mathkit import norm_cdf, norm_ppf
from repro.stochastic.paths import DecisionTimeGrid, sample_decision_prices
from repro.stochastic.quadrature import (
    expectation_on_interval,
    expectation_on_intervals,
    gauss_legendre_nodes,
)
from repro.stochastic.rng import RandomState, spawn_streams, stable_seed
from repro.stochastic.rootfind import (
    IntervalUnion,
    bisect_roots,
    bracketed_root,
    find_all_roots,
    grid_sign_change_brackets,
    sign_change_brackets,
)

__all__ = [
    "GeometricBrownianMotion",
    "LawSpec",
    "LognormalLaw",
    "LognormalStepKernel",
    "MixtureLaw",
    "MixtureStepKernel",
    "norm_cdf",
    "norm_ppf",
    "parse_law",
    "registered_laws",
    "step_kernel",
    "transition_pieces",
    "DecisionTimeGrid",
    "sample_decision_prices",
    "expectation_on_interval",
    "expectation_on_intervals",
    "gauss_legendre_nodes",
    "RandomState",
    "spawn_streams",
    "stable_seed",
    "IntervalUnion",
    "bisect_roots",
    "bracketed_root",
    "find_all_roots",
    "grid_sign_change_brackets",
    "sign_change_brackets",
]
