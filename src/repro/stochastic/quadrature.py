"""Expectation integrals for the backward induction.

The paper's stage utilities (Equations (20), (21), (25), (26), (31),
(35)--(37), (40)) all take the form

    integral over a price interval of  pdf(x) * g(x) dx

with ``pdf`` a price-law density and ``g`` a bounded, smooth stage
payoff. We evaluate these with fixed-order Gauss--Legendre quadrature in
*log-price* space, which removes the lognormal's sharp peak near zero
and makes 64--128 nodes accurate to ~1e-12 for the payoffs at hand.

Semi-infinite integrals are truncated at quantiles carrying negligible
mass (see :meth:`LognormalLaw.effective_support`).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.stochastic.mathkit import DEFAULT_QUAD_ORDER, gauss_legendre_nodes

__all__ = [
    "gauss_legendre_nodes",
    "expectation_on_interval",
    "expectation_on_intervals",
    "expectation_above",
    "expectation_below",
    "DEFAULT_QUAD_ORDER",
]

_TAIL_MASS = 1e-13


def _transformed_integral(
    law,
    g: Callable[[np.ndarray], np.ndarray],
    lo: float,
    hi: float,
    order: int,
) -> float:
    """Integrate ``pdf(x) g(x)`` over ``(lo, hi)`` in log space.

    With ``y = ln x`` the integrand becomes ``phi(y) g(e^y)`` where
    ``phi`` is a normal density -- smooth and well-behaved on the
    truncated support.
    """
    if hi <= lo:
        return 0.0
    a, b = np.log(lo), np.log(hi)
    nodes, weights = gauss_legendre_nodes(order)
    y = 0.5 * (b - a) * nodes + 0.5 * (b + a)
    x = np.exp(y)
    phi = law.logspace_density(y)
    values = phi * np.asarray(g(x), dtype=float)
    return float(0.5 * (b - a) * np.dot(weights, values))


def expectation_on_interval(
    law,
    g: Callable[[np.ndarray], np.ndarray],
    lo: float,
    hi: float,
    order: int = DEFAULT_QUAD_ORDER,
) -> float:
    """:math:`E[g(P) 1\\{lo < P \\le hi\\}]` under ``law``.

    ``g`` must accept a numpy array of prices and return an array of the
    same shape. The interval is clipped to the law's effective support;
    mass outside is negligible by construction.
    """
    if lo < 0.0:
        lo = 0.0
    if hi <= lo:
        return 0.0
    support_lo, support_hi = law.effective_support(_TAIL_MASS)
    lo_eff = max(lo, support_lo)
    hi_eff = min(hi, support_hi)
    if hi_eff <= lo_eff:
        return 0.0
    return _transformed_integral(law, g, lo_eff, hi_eff, order)


def expectation_on_intervals(
    law,
    g: Callable[[np.ndarray], np.ndarray],
    lo,
    hi,
    order: int = DEFAULT_QUAD_ORDER,
) -> np.ndarray:
    """Batched :func:`expectation_on_interval`: one rule, many intervals.

    ``lo`` and ``hi`` are equal-length arrays of interval endpoints, all
    integrated under the *same* ``law`` with one shared Gauss--Legendre
    node set. ``g`` receives the full ``(batch, order)`` node array (so
    it can broadcast per-row constants against it) and must evaluate
    elementwise. Returns a ``(batch,)`` array; rows whose clipped
    interval is empty contribute exactly ``0.0``, matching the scalar
    function's early return.
    """
    lo = np.maximum(np.asarray(lo, dtype=float), 0.0)
    hi = np.asarray(hi, dtype=float)
    if lo.shape != hi.shape or lo.ndim != 1:
        raise ValueError(
            f"lo/hi must be equal-length 1-D arrays, got {lo.shape} and {hi.shape}"
        )
    if lo.size == 0:
        return np.zeros(0)
    support_lo, support_hi = law.effective_support(_TAIL_MASS)
    lo_eff = np.maximum(lo, support_lo)
    hi_eff = np.minimum(hi, support_hi)
    active = hi_eff > lo_eff
    # inactive rows get the full support as a well-defined placeholder
    # domain for the log transform; their result is zeroed at the end
    lo_eff = np.where(active, lo_eff, support_lo)
    hi_eff = np.where(active, hi_eff, support_hi)
    a = np.log(lo_eff)[:, None]
    b = np.log(hi_eff)[:, None]
    nodes, weights = gauss_legendre_nodes(order)
    y = 0.5 * (b - a) * nodes + 0.5 * (b + a)
    x = np.exp(y)
    phi = law.logspace_density(y)
    values = phi * np.asarray(g(x), dtype=float)
    out = 0.5 * (b[:, 0] - a[:, 0]) * (values @ weights)
    return np.where(active, out, 0.0)


def expectation_above(
    law,
    g: Callable[[np.ndarray], np.ndarray],
    lo: float,
    order: int = DEFAULT_QUAD_ORDER,
) -> float:
    """:math:`E[g(P) 1\\{P > lo\\}]` under ``law`` (upper tail truncated)."""
    _, support_hi = law.effective_support(_TAIL_MASS)
    return expectation_on_interval(law, g, lo, support_hi, order)


def expectation_below(
    law,
    g: Callable[[np.ndarray], np.ndarray],
    hi: float,
    order: int = DEFAULT_QUAD_ORDER,
) -> float:
    """:math:`E[g(P) 1\\{P \\le hi\\}]` under ``law`` (lower tail truncated)."""
    support_lo, _ = law.effective_support(_TAIL_MASS)
    return expectation_on_interval(law, g, support_lo, hi, order)
