"""The lognormal law of a GBM increment.

Under the paper's Assumption 4 (Equation (1)), the Token_b price at
``t + tau`` given its time-``t`` value ``P_t`` is lognormal:

    ln P_{t+tau} ~ Normal(m, s^2)
    m = ln P_t + (mu - sigma^2 / 2) * tau
    s = sigma * sqrt(tau)

This module wraps that law with the exact quantities the backward
induction needs:

* ``pdf`` and ``cdf`` -- the paper's :math:`\\mathcal{P}` and
  :math:`\\mathcal{C}`;
* ``mean`` -- the paper's :math:`\\mathcal{E}(P_t, tau) = P_t e^{mu tau}`;
* ``partial_expectation_above``/``below`` --
  :math:`E[P 1\\{P > K\\}]` and :math:`E[P 1\\{P \\le K\\}]`,
  the Black--Scholes style terms that make every stage utility closed
  form;
* ``quantile`` and ``truncate`` helpers used by the quadrature and the
  root bracketing.

Everything is vectorised over the evaluation point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.stochastic.mathkit import norm_cdf, norm_ppf

__all__ = ["LognormalLaw", "norm_cdf", "norm_ppf", "transition_pieces"]


def transition_pieces(spot, mu: float, sigma: float, tau: float, k):
    """Threshold pieces of one GBM transition, broadcast over ``spot``/``k``.

    For a price starting at ``spot`` and evolving for ``tau`` under GBM
    drift ``mu`` / volatility ``sigma``, returns the triple

        ``(cdf, survival, partial_below)``

    evaluated at the threshold ``k``: ``P[P <= k]``, ``P[P > k]`` and
    ``E[P 1{P <= k}]``. Where ``k <= 0`` the threshold is never reached
    from above, so the pieces degenerate to ``(0, 1, 0)`` (the
    collateral extension's "Alice always continues" case).

    ``spot`` and ``k`` may be arrays of any mutually broadcastable
    shapes; the formulas are the exact Black--Scholes style expressions
    the scalar :class:`LognormalLaw` methods use, so a one-point call
    reproduces the scalar path to machine precision.
    """
    spot = np.asarray(spot, dtype=float)
    k = np.asarray(k, dtype=float)
    mean = spot * math.exp(mu * tau)
    s = sigma * math.sqrt(tau)
    log_mean = np.log(spot) + (mu - 0.5 * sigma**2) * tau
    pos = k > 0.0
    # a positive placeholder keeps np.log defined on masked-out lanes
    log_k = np.log(np.where(pos, k, 1.0))
    z = (log_k - log_mean) / s
    cdf = np.where(pos, norm_cdf(z), 0.0)
    survival = np.where(pos, norm_cdf(-z), 1.0)
    d1 = (log_mean + s * s - log_k) / s
    partial_above = mean * norm_cdf(d1)
    partial_below = np.where(pos, np.maximum(mean - partial_above, 0.0), 0.0)
    return cdf, survival, partial_below


@dataclass(frozen=True)
class LognormalLaw:
    """Law of ``P_{t+tau}`` given ``P_t`` under GBM.

    Parameters
    ----------
    spot:
        Current price ``P_t`` (must be positive).
    mu:
        GBM drift per unit time.
    sigma:
        GBM volatility per square-root unit time (must be positive).
    tau:
        Horizon (must be positive).
    """

    spot: float
    mu: float
    sigma: float
    tau: float

    def __post_init__(self) -> None:
        if not self.spot > 0.0:
            raise ValueError(f"spot must be positive, got {self.spot}")
        if not self.sigma > 0.0:
            raise ValueError(f"sigma must be positive, got {self.sigma}")
        if not self.tau > 0.0:
            raise ValueError(f"tau must be positive, got {self.tau}")

    # ----------------------------------------------------------------- #
    # log-space parameters
    # ----------------------------------------------------------------- #

    @property
    def log_mean(self) -> float:
        """Mean of ``ln P_{t+tau}``."""
        return math.log(self.spot) + (self.mu - 0.5 * self.sigma**2) * self.tau

    @property
    def log_std(self) -> float:
        """Standard deviation of ``ln P_{t+tau}``."""
        return self.sigma * math.sqrt(self.tau)

    # ----------------------------------------------------------------- #
    # the paper's E / P / C
    # ----------------------------------------------------------------- #

    def mean(self) -> float:
        """:math:`\\mathcal{E}(P_t, tau) = P_t e^{mu tau}` (paper, Sec. III-A)."""
        return self.spot * math.exp(self.mu * self.tau)

    def logspace_density(self, y):
        """Density of ``ln P_{t+tau}`` at ``y`` (the quadrature weight).

        This is the exact expression the Gauss--Legendre integrals in
        :mod:`repro.stochastic.quadrature` evaluate, factored out so
        mixture laws can supply their own.
        """
        y = np.asarray(y, dtype=float)
        z = (y - self.log_mean) / self.log_std
        return np.exp(-0.5 * z * z) / (self.log_std * np.sqrt(2.0 * np.pi))

    def pdf(self, x):
        """:math:`\\mathcal{P}(x, P_t, tau)`, the lognormal density at ``x``.

        Zero for ``x <= 0``.
        """
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        pos = x > 0.0
        if np.any(pos):
            z = (np.log(x[pos]) - self.log_mean) / self.log_std
            out[pos] = np.exp(-0.5 * z * z) / (
                x[pos] * self.log_std * math.sqrt(2.0 * math.pi)
            )
        return out if out.ndim else float(out)

    def cdf(self, x):
        """:math:`\\mathcal{C}(x, P_t, tau) = P[P_{t+tau} \\le x | P_t]`."""
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        pos = x > 0.0
        if np.any(pos):
            z = (np.log(x[pos]) - self.log_mean) / self.log_std
            out[pos] = norm_cdf(z)
        return out if out.ndim else float(out)

    def survival(self, x):
        """:math:`P[P_{t+tau} > x | P_t] = 1 - \\mathcal{C}(x, ...)`."""
        x = np.asarray(x, dtype=float)
        out = np.ones_like(x)
        pos = x > 0.0
        if np.any(pos):
            z = (np.log(x[pos]) - self.log_mean) / self.log_std
            out[pos] = norm_cdf(-z)
        return out if out.ndim else float(out)

    # ----------------------------------------------------------------- #
    # partial expectations (the closed-form workhorses)
    # ----------------------------------------------------------------- #

    def partial_expectation_above(self, k) -> np.ndarray:
        """:math:`E[P_{t+tau} 1\\{P_{t+tau} > k\\} | P_t]`.

        Equals ``mean() * Phi(d1)`` with
        ``d1 = (ln(spot/k) + (mu + sigma^2/2) tau) / (sigma sqrt(tau))``,
        the familiar Black--Scholes first term. For ``k <= 0`` this is
        the full mean.
        """
        k = np.asarray(k, dtype=float)
        out = np.full_like(k, self.mean())
        pos = k > 0.0
        if np.any(pos):
            d1 = (self.log_mean + self.log_std**2 - np.log(k[pos])) / self.log_std
            out[pos] = self.mean() * norm_cdf(d1)
        return out if out.ndim else float(out)

    def partial_expectation_below(self, k) -> np.ndarray:
        """:math:`E[P_{t+tau} 1\\{P_{t+tau} \\le k\\} | P_t]`."""
        k = np.asarray(k, dtype=float)
        out = self.mean() - np.asarray(self.partial_expectation_above(k))
        # guard tiny negative values from cancellation
        out = np.maximum(out, 0.0)
        return out if out.ndim else float(out)

    def partial_expectation_between(self, lo, hi) -> float:
        """:math:`E[P 1\\{lo < P \\le hi\\}]`; requires ``lo <= hi``."""
        lo_f = float(lo)
        hi_f = float(hi)
        if lo_f > hi_f:
            raise ValueError(f"empty interval: lo={lo_f} > hi={hi_f}")
        return max(
            float(self.partial_expectation_above(lo_f))
            - float(self.partial_expectation_above(hi_f)),
            0.0,
        )

    def probability_between(self, lo, hi) -> float:
        """:math:`P[lo < P_{t+tau} \\le hi]`; requires ``lo <= hi``."""
        lo_f = float(lo)
        hi_f = float(hi)
        if lo_f > hi_f:
            raise ValueError(f"empty interval: lo={lo_f} > hi={hi_f}")
        return max(float(self.cdf(hi_f)) - float(self.cdf(lo_f)), 0.0)

    # ----------------------------------------------------------------- #
    # quantiles and support truncation
    # ----------------------------------------------------------------- #

    def quantile(self, q) -> np.ndarray:
        """Inverse CDF."""
        z = norm_ppf(q)
        return np.exp(self.log_mean + self.log_std * z)

    def effective_support(self, tail_mass: float = 1e-12):
        """A ``(lo, hi)`` interval carrying all but ``2 * tail_mass`` mass.

        Used to truncate semi-infinite expectation integrals.
        """
        if not 0.0 < tail_mass < 0.5:
            raise ValueError(f"tail_mass must be in (0, 0.5), got {tail_mass}")
        lo = float(self.quantile(tail_mass))
        hi = float(self.quantile(1.0 - tail_mass))
        return lo, hi

    def sample(self, rng, size=None) -> np.ndarray:
        """Draw exact samples of ``P_{t+tau}``."""
        z = rng.standard_normal(size)
        return np.exp(self.log_mean + self.log_std * z)
