"""Geometric Brownian motion (the paper's Equation (1)).

Token_b's price in units of Token_a follows

    ln(P_{t+tau} / P_t) = (mu - sigma^2 / 2) tau + sigma (W_{t+tau} - W_t)

with ``W`` a standard Wiener process. :class:`GeometricBrownianMotion`
bundles the drift/volatility pair and exposes

* the conditional law at any horizon (:meth:`law`, a
  :class:`~repro.stochastic.lognormal.LognormalLaw`),
* the paper's conditional expectation :math:`\\mathcal{E}(P_t, tau)`,
  PDF :math:`\\mathcal{P}` and CDF :math:`\\mathcal{C}`,
* exact simulation of terminal prices and full paths on arbitrary time
  grids (no discretisation error -- GBM increments are sampled from
  their exact lognormal law).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.stochastic.lognormal import LognormalLaw
from repro.stochastic.rng import RandomState

__all__ = ["GeometricBrownianMotion"]


@dataclass(frozen=True)
class GeometricBrownianMotion:
    """A GBM with drift ``mu`` (per hour) and volatility ``sigma`` (per sqrt hour).

    The units follow the paper's Table III; any consistent time unit
    works as long as ``mu``, ``sigma`` and the horizons agree.
    """

    mu: float
    sigma: float

    def __post_init__(self) -> None:
        if not self.sigma > 0.0:
            raise ValueError(f"sigma must be positive, got {self.sigma}")
        if not math.isfinite(self.mu):
            raise ValueError(f"mu must be finite, got {self.mu}")

    # ----------------------------------------------------------------- #
    # analytic conditional law
    # ----------------------------------------------------------------- #

    def law(self, spot: float, tau: float) -> LognormalLaw:
        """Conditional law of ``P_{t+tau}`` given ``P_t = spot``."""
        return LognormalLaw(spot=spot, mu=self.mu, sigma=self.sigma, tau=tau)

    def expectation(self, spot: float, tau: float) -> float:
        """:math:`\\mathcal{E}(P_t, tau) = P_t e^{mu tau}`."""
        if not spot > 0.0:
            raise ValueError(f"spot must be positive, got {spot}")
        if tau < 0.0:
            raise ValueError(f"tau must be non-negative, got {tau}")
        return spot * math.exp(self.mu * tau)

    def pdf(self, x, spot: float, tau: float):
        """:math:`\\mathcal{P}(x, P_t, tau)`."""
        return self.law(spot, tau).pdf(x)

    def cdf(self, x, spot: float, tau: float):
        """:math:`\\mathcal{C}(x, P_t, tau)`."""
        return self.law(spot, tau).cdf(x)

    # ----------------------------------------------------------------- #
    # exact simulation
    # ----------------------------------------------------------------- #

    def step(self, spot, tau: float, rng: RandomState, size=None):
        """Sample ``P_{t+tau}`` given ``P_t = spot`` (vectorised over spot)."""
        if tau < 0.0:
            raise ValueError(f"tau must be non-negative, got {tau}")
        spot = np.asarray(spot, dtype=float)
        if tau == 0.0:
            return spot.copy() if spot.ndim else float(spot)
        if size is None:
            size = spot.shape if spot.ndim else None
        z = rng.standard_normal(size)
        growth = (self.mu - 0.5 * self.sigma**2) * tau + self.sigma * math.sqrt(tau) * z
        out = spot * np.exp(growth)
        return out if np.ndim(out) else float(out)

    def sample_path(
        self,
        spot: float,
        times: Sequence[float],
        rng: RandomState,
        n_paths: int = 1,
        antithetic: bool = False,
    ) -> np.ndarray:
        """Sample price paths on a strictly increasing time grid.

        Parameters
        ----------
        spot:
            Initial price at time ``times[0]``'s *predecessor*: the first
            column of the output corresponds to ``times[0]``, simulated
            from ``spot`` at time 0. Pass ``times[0] == 0.0`` to include
            the spot itself as the first column.
        times:
            Non-negative, strictly increasing observation times.
        n_paths:
            Number of independent paths.
        antithetic:
            If true, the second half of the paths reuses the negated
            normal draws of the first half (variance reduction). Requires
            an even ``n_paths``.

        Returns
        -------
        numpy.ndarray
            Array of shape ``(n_paths, len(times))``.
        """
        times = np.asarray(times, dtype=float)
        if times.ndim != 1 or times.size == 0:
            raise ValueError("times must be a non-empty 1-D sequence")
        if times[0] < 0.0 or np.any(np.diff(times) <= 0.0):
            raise ValueError("times must be non-negative and strictly increasing")
        if n_paths < 1:
            raise ValueError(f"n_paths must be >= 1, got {n_paths}")
        if antithetic and n_paths % 2 != 0:
            raise ValueError("antithetic sampling requires an even n_paths")
        if not spot > 0.0:
            raise ValueError(f"spot must be positive, got {spot}")

        dts = np.diff(np.concatenate(([0.0], times)))
        n_draw = n_paths // 2 if antithetic else n_paths
        z = rng.standard_normal((n_draw, times.size))
        if antithetic:
            z = np.vstack([z, -z])
        drift = (self.mu - 0.5 * self.sigma**2) * dts
        diffusion = self.sigma * np.sqrt(dts) * z
        log_increments = drift[None, :] + diffusion
        # a zero first time means "observe the spot": zero dt contributes 0
        log_paths = math.log(spot) + np.cumsum(log_increments, axis=1)
        return np.exp(log_paths)
