"""Pluggable price laws: one interface, many transition kernels.

The paper's equilibrium analysis hardwires Assumption 4 -- prices follow
GBM, so every one-step transition is lognormal. This module turns that
assumption into an interface so the same backward induction can run
under fat-tailed and regime-dependent dynamics:

* :class:`LawSpec` -- a small serializable description of a law
  (``kind`` + named float parameters), with a versioned registry, JSON
  round-tripping, and a CLI shorthand parser
  (``merton:jump_intensity=0.05``).
* :class:`StepKernel` -- the protocol the solvers consume: the
  ``(cdf, survival, partial_below)`` threshold pieces of one transition,
  a log-space survival kernel, a per-spot distribution object for
  quadrature, and sampling hooks for Monte Carlo.
* :class:`LognormalStepKernel` -- the GBM kernel. It delegates to the
  exact closed forms in :mod:`repro.stochastic.lognormal`, so solving
  under the default law is *bit-identical* to the pre-refactor code.
* :class:`MixtureStepKernel` / :class:`MixtureLaw` -- a finite mixture
  of lognormal components over one step. Both non-GBM laws (Merton
  jump-diffusion, 2-state regime switching) reduce to this shape, so the
  generic machinery is written once.

Every registered kernel preserves the paper's mean identity
:math:`E[P_{t+\\tau} | P_t] = P_t e^{\\mu \\tau}` **exactly** (the
mixture constructors compensate their components to make it hold), so
the closed-form drift factors baked into the stage utilities (e.g. the
:math:`(1+\\alpha) e^{(\\mu - r) \\tau_b}` factor of Equation (21))
remain valid under every law.

Law degeneracies are exact, not approximate: a Merton spec with
``jump_intensity == 0`` and a regime spec with equal volatilities both
*return* a :class:`LognormalStepKernel`, so their results match the
default law to the last bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.stochastic.lognormal import LognormalLaw, transition_pieces
from repro.stochastic.mathkit import norm_cdf, norm_ppf

__all__ = [
    "LawSpec",
    "LawInfo",
    "LognormalStepKernel",
    "MixtureStepKernel",
    "MixtureLaw",
    "step_kernel",
    "observe_law",
    "register_law",
    "registered_laws",
    "law_registry",
    "parse_law",
    "LOGNORMAL",
]

_LOG_SQRT_2PI = np.sqrt(2.0 * np.pi)


# --------------------------------------------------------------------- #
# LawSpec: the serializable description
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class LawSpec:
    """A serializable description of a price law.

    ``kind`` names a registered law; ``params`` holds its named float
    parameters as a sorted tuple of ``(name, value)`` pairs (a tuple so
    the spec is hashable and usable inside frozen dataclasses like
    ``SwapParameters``). Use :meth:`make` / :meth:`from_dict` /
    :func:`parse_law` rather than the raw constructor -- they validate
    against the registry and fill defaults, producing a canonical form.
    """

    kind: str = "lognormal"
    params: Tuple[Tuple[str, float], ...] = ()

    # -- constructors -------------------------------------------------- #

    @staticmethod
    def lognormal() -> "LawSpec":
        return LawSpec()

    @staticmethod
    def make(kind: str, **params: float) -> "LawSpec":
        """Build a validated, canonical spec for a registered ``kind``."""
        info = law_registry().get(kind)
        if info is None:
            known = ", ".join(sorted(law_registry()))
            raise ValueError(f"unknown law kind {kind!r} (known: {known})")
        merged = dict(info.defaults)
        for name, value in params.items():
            if name not in merged:
                allowed = ", ".join(info.param_names) or "(none)"
                raise ValueError(
                    f"law {kind!r} has no parameter {name!r} (allowed: {allowed})"
                )
            merged[name] = float(value)
        info.validate(merged)
        return LawSpec(kind=kind, params=tuple(sorted(merged.items())))

    # -- views --------------------------------------------------------- #

    @property
    def is_lognormal(self) -> bool:
        return self.kind == "lognormal"

    def param_dict(self) -> Dict[str, float]:
        return dict(self.params)

    def describe(self) -> str:
        """Human-oriented one-liner, e.g. ``merton(jump_intensity=0.05, ...)``."""
        if not self.params:
            return self.kind
        inner = ", ".join(f"{k}={v:g}" for k, v in self.params)
        return f"{self.kind}({inner})"

    # -- serialization ------------------------------------------------- #

    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON form: ``kind`` plus the *full* parameter set."""
        out: Dict[str, object] = {"kind": self.kind}
        if self.params:
            out["params"] = {k: float(v) for k, v in self.params}
        return out

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "LawSpec":
        if not isinstance(data, Mapping):
            raise ValueError(f"law spec must be a mapping, got {type(data).__name__}")
        unknown = set(data) - {"kind", "params"}
        if unknown:
            raise ValueError(f"unknown law spec fields: {sorted(unknown)}")
        kind = data.get("kind")
        if not isinstance(kind, str):
            raise ValueError("law spec requires a string 'kind'")
        params = data.get("params", {})
        if not isinstance(params, Mapping):
            raise ValueError("law spec 'params' must be a mapping of name -> float")
        return LawSpec.make(kind, **{str(k): float(v) for k, v in params.items()})


def parse_law(text: str) -> LawSpec:
    """Parse the CLI shorthand ``kind[:name=value,name=value,...]``.

    Examples::

        lognormal
        merton:jump_intensity=0.05,jump_mean=-0.05,jump_std=0.1
        regime:sigma_calm=0.05,sigma_turbulent=0.2

    Unspecified parameters take the registered defaults.
    """
    text = text.strip()
    if not text:
        raise ValueError("empty law shorthand")
    kind, _, rest = text.partition(":")
    params: Dict[str, float] = {}
    if rest:
        for item in rest.split(","):
            item = item.strip()
            if not item:
                continue
            name, sep, value = item.partition("=")
            if not sep:
                raise ValueError(
                    f"bad law parameter {item!r}: expected name=value"
                )
            try:
                params[name.strip()] = float(value)
            except ValueError:
                raise ValueError(f"bad float in law parameter {item!r}") from None
    return LawSpec.make(kind.strip(), **params)


LOGNORMAL = LawSpec()


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class LawInfo:
    """Registry entry for one law kind."""

    kind: str
    version: int
    param_names: Tuple[str, ...]
    defaults: Dict[str, float]
    validate: Callable[[Mapping[str, float]], None]
    build: Callable[[Mapping[str, float], float, float, float], "StepKernel"]


_REGISTRY: Dict[str, LawInfo] = {}


def register_law(
    kind: str,
    *,
    version: int,
    defaults: Mapping[str, float],
    validate: Callable[[Mapping[str, float]], None],
    build: Callable[[Mapping[str, float], float, float, float], "StepKernel"],
) -> None:
    """Register a law kind. Re-registering a kind is an error."""
    if kind in _REGISTRY:
        raise ValueError(f"law kind {kind!r} already registered")
    _REGISTRY[kind] = LawInfo(
        kind=kind,
        version=int(version),
        param_names=tuple(sorted(defaults)),
        defaults={k: float(v) for k, v in defaults.items()},
        validate=validate,
        build=build,
    )


def law_registry() -> Dict[str, LawInfo]:
    """The registry mapping ``kind -> LawInfo`` (live view)."""
    return _REGISTRY


def registered_laws() -> Dict[str, int]:
    """``{kind: version}`` for discovery endpoints (``/version``, ``/readyz``)."""
    return {kind: info.version for kind, info in sorted(_REGISTRY.items())}


def observe_law(kind: str, layer: str) -> None:
    """Record one solve/sample pass under a law at a solver layer.

    Looked up on the *current* metrics registry at call time, matching
    the convention of :func:`repro.core.solver.observe_solver`.
    """
    from repro.obs.metrics import get_registry

    get_registry().counter(
        "repro_law_solves_total",
        "Solver passes by price law and layer.",
        labelnames=("law", "layer"),
    ).inc(law=kind, layer=layer)


def step_kernel(spec: LawSpec, mu: float, sigma: float, tau: float) -> "StepKernel":
    """Build the one-step transition kernel for ``spec`` over horizon ``tau``.

    ``mu`` and ``sigma`` are the swap's drift/volatility parameters; how a
    law uses ``sigma`` is its own business (the regime law replaces it
    with its per-state volatilities), but every kernel preserves
    ``E[P_{t+tau} | P_t] = P_t e^{mu tau}`` exactly.
    """
    info = _REGISTRY.get(spec.kind)
    if info is None:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown law kind {spec.kind!r} (known: {known})")
    return info.build(spec.param_dict(), float(mu), float(sigma), float(tau))


# --------------------------------------------------------------------- #
# kernels
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class LognormalStepKernel:
    """The GBM one-step kernel (Assumption 4).

    Every method delegates to the closed forms in
    :mod:`repro.stochastic.lognormal` with the exact operation order the
    pre-refactor solvers used, so results under this kernel are
    bit-identical to the historical lognormal-only code path.
    """

    mu: float
    sigma: float
    tau: float

    kind = "lognormal"
    is_lognormal = True

    def pieces(self, spot, k):
        """``(cdf, survival, partial_below)`` at threshold ``k``."""
        return transition_pieces(spot, self.mu, self.sigma, self.tau, k)

    def survival_from_logs(self, log_x, log_k):
        """``P[P' > k | P = x]`` from log prices, broadcast."""
        s = self.sigma * math.sqrt(self.tau)
        drift = (self.mu - 0.5 * self.sigma**2) * self.tau
        z = (np.asarray(log_k, dtype=float) - np.asarray(log_x, dtype=float) - drift) / s
        return norm_cdf(-z)

    @property
    def mean_factor(self) -> float:
        """``E[P'|P] / P`` -- exactly ``e^{mu tau}``."""
        return math.exp(self.mu * self.tau)

    def law(self, spot: float) -> LognormalLaw:
        return LognormalLaw(spot=float(spot), mu=self.mu, sigma=self.sigma, tau=self.tau)

    def sample_from_normal(self, spot, u, z):
        """Map pre-drawn uniforms/normals to prices (``u`` unused here).

        Sharing the signature with the mixture kernel lets Monte Carlo
        implement antithetic variates uniformly: mirror ``z``, keep ``u``.
        """
        drift = (self.mu - 0.5 * self.sigma**2) * self.tau
        s = self.sigma * math.sqrt(self.tau)
        return np.asarray(spot, dtype=float) * np.exp(drift + s * np.asarray(z, dtype=float))


@dataclass(frozen=True)
class MixtureStepKernel:
    """A finite mixture of lognormal components over one step.

    Conditional on component ``j`` (probability ``weights[j]``),

        ``ln P' = ln P + Normal(log_drifts[j], log_stds[j]^2)``.

    Constructors must arrange ``sum_j w_j e^{a_j + s_j^2/2} = e^{mu tau}``
    so the paper's mean identity holds exactly; :func:`_compensate`
    does this by shifting all component drifts by a common constant.
    """

    kind: str
    mu: float
    tau: float
    weights: Tuple[float, ...]
    log_drifts: Tuple[float, ...]
    log_stds: Tuple[float, ...]

    is_lognormal = False

    def __post_init__(self) -> None:
        if not (len(self.weights) == len(self.log_drifts) == len(self.log_stds)):
            raise ValueError("mixture component arrays must have equal length")
        if len(self.weights) == 0:
            raise ValueError("mixture must have at least one component")
        if any(s <= 0.0 for s in self.log_stds):
            raise ValueError("mixture component log-stds must be positive")

    # cached array views -------------------------------------------------

    @property
    def _w(self) -> np.ndarray:
        return np.asarray(self.weights, dtype=float)

    @property
    def _a(self) -> np.ndarray:
        return np.asarray(self.log_drifts, dtype=float)

    @property
    def _s(self) -> np.ndarray:
        return np.asarray(self.log_stds, dtype=float)

    @property
    def mean_factor(self) -> float:
        return math.exp(self.mu * self.tau)

    # solver interface ---------------------------------------------------

    def pieces(self, spot, k):
        """``(cdf, survival, partial_below)`` at threshold ``k``, broadcast.

        Mirrors :func:`repro.stochastic.lognormal.transition_pieces`
        piecewise semantics: for ``k <= 0`` the pieces degenerate to
        ``(0, 1, 0)``.
        """
        spot = np.asarray(spot, dtype=float)
        k = np.asarray(k, dtype=float)
        spot_b, k_b = np.broadcast_arrays(spot, k)
        log_spot = np.log(spot_b)[..., None]
        pos = k_b > 0.0
        log_k = np.log(np.where(pos, k_b, 1.0))[..., None]
        w, a, s = self._w, self._a, self._s
        z = (log_k - log_spot - a) / s
        cdf = np.where(pos, (norm_cdf(z) * w).sum(axis=-1), 0.0)
        survival = np.where(pos, (norm_cdf(-z) * w).sum(axis=-1), 1.0)
        comp_mean = np.exp(log_spot + a + 0.5 * s * s)
        d1 = (log_spot + a + s * s - log_k) / s
        partial_above = (w * comp_mean * norm_cdf(d1)).sum(axis=-1)
        mean = spot_b * self.mean_factor
        partial_below = np.where(pos, np.maximum(mean - partial_above, 0.0), 0.0)
        return cdf, survival, partial_below

    def survival_from_logs(self, log_x, log_k):
        log_x = np.asarray(log_x, dtype=float)
        log_k = np.asarray(log_k, dtype=float)
        lx, lk = np.broadcast_arrays(log_x, log_k)
        z = (lk[..., None] - lx[..., None] - self._a) / self._s
        return (norm_cdf(-z) * self._w).sum(axis=-1)

    def law(self, spot: float) -> "MixtureLaw":
        spot = float(spot)
        if not spot > 0.0:
            raise ValueError(f"spot must be positive, got {spot}")
        return MixtureLaw(
            spot=spot,
            weights=self.weights,
            log_means=tuple(math.log(spot) + a for a in self.log_drifts),
            log_stds=self.log_stds,
        )

    def sample_from_normal(self, spot, u, z):
        """Map pre-drawn ``Uniform(0,1)`` / standard-normal draws to prices.

        ``u`` selects the mixture component (inverse-CDF on the weights);
        ``z`` is the within-component normal. Antithetic pairs share
        ``u`` and mirror ``z``, so the component choice is common to the
        pair and only the diffusion is reflected.
        """
        u = np.asarray(u, dtype=float)
        z = np.asarray(z, dtype=float)
        cum = np.cumsum(self._w)
        cum[-1] = 1.0
        idx = np.searchsorted(cum, u, side="right")
        idx = np.minimum(idx, len(self.weights) - 1)
        a = self._a[idx]
        s = self._s[idx]
        return np.asarray(spot, dtype=float) * np.exp(a + s * z)


def _compensate(
    kind: str,
    mu: float,
    tau: float,
    weights: np.ndarray,
    bases: np.ndarray,
    stds: np.ndarray,
) -> MixtureStepKernel:
    """Normalise weights and shift drifts so the mean identity is exact.

    Adds the constant ``c = mu tau - ln(sum_j w_j e^{b_j + s_j^2/2})`` to
    every component drift, making ``E[P'/P] = e^{mu tau}`` hold to the
    last bit regardless of truncation error in the component weights.
    """
    w = np.asarray(weights, dtype=float)
    w = w / w.sum()
    b = np.asarray(bases, dtype=float)
    s = np.asarray(stds, dtype=float)
    # log-sum-exp for numerical safety
    ex = b + 0.5 * s * s
    m = float(np.max(ex))
    log_mean = m + math.log(float(np.sum(w * np.exp(ex - m))))
    c = mu * tau - log_mean
    return MixtureStepKernel(
        kind=kind,
        mu=mu,
        tau=tau,
        weights=tuple(float(x) for x in w),
        log_drifts=tuple(float(x) for x in (b + c)),
        log_stds=tuple(float(x) for x in s),
    )


# --------------------------------------------------------------------- #
# MixtureLaw: the per-spot distribution object
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class MixtureLaw:
    """Law of ``P'`` given one spot under a mixture kernel.

    Implements the same duck interface as :class:`LognormalLaw` (mean,
    pdf/cdf/survival, partial expectations, quantile, effective support,
    sampling, log-space density), so the quadrature, root finding and
    lattice discretisation work unchanged.
    """

    spot: float
    weights: Tuple[float, ...]
    log_means: Tuple[float, ...]
    log_stds: Tuple[float, ...]

    @property
    def _w(self) -> np.ndarray:
        return np.asarray(self.weights, dtype=float)

    @property
    def _m(self) -> np.ndarray:
        return np.asarray(self.log_means, dtype=float)

    @property
    def _s(self) -> np.ndarray:
        return np.asarray(self.log_stds, dtype=float)

    def mean(self) -> float:
        return float(np.sum(self._w * np.exp(self._m + 0.5 * self._s**2)))

    def logspace_density(self, y):
        """Density of ``ln P'`` at ``y`` (the quadrature integrand weight)."""
        y = np.asarray(y, dtype=float)
        z = (y[..., None] - self._m) / self._s
        phi = np.exp(-0.5 * z * z) / (self._s * _LOG_SQRT_2PI)
        out = (phi * self._w).sum(axis=-1)
        return out if out.ndim else float(out)

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        pos = x > 0.0
        if np.any(pos):
            out[pos] = self.logspace_density(np.log(x[pos])) / x[pos]
        return out if out.ndim else float(out)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        pos = x > 0.0
        if np.any(pos):
            z = (np.log(x[pos])[..., None] - self._m) / self._s
            out[pos] = (norm_cdf(z) * self._w).sum(axis=-1)
        return out if out.ndim else float(out)

    def survival(self, x):
        x = np.asarray(x, dtype=float)
        out = np.ones_like(x)
        pos = x > 0.0
        if np.any(pos):
            z = (np.log(x[pos])[..., None] - self._m) / self._s
            out[pos] = (norm_cdf(-z) * self._w).sum(axis=-1)
        return out if out.ndim else float(out)

    def partial_expectation_above(self, k):
        k = np.asarray(k, dtype=float)
        out = np.full_like(k, self.mean())
        pos = k > 0.0
        if np.any(pos):
            log_k = np.log(k[pos])[..., None]
            comp_mean = np.exp(self._m + 0.5 * self._s**2)
            d1 = (self._m + self._s**2 - log_k) / self._s
            out[pos] = (self._w * comp_mean * norm_cdf(d1)).sum(axis=-1)
        return out if out.ndim else float(out)

    def partial_expectation_below(self, k):
        k = np.asarray(k, dtype=float)
        out = np.maximum(self.mean() - np.asarray(self.partial_expectation_above(k)), 0.0)
        return out if out.ndim else float(out)

    def partial_expectation_between(self, lo, hi) -> float:
        lo_f = float(lo)
        hi_f = float(hi)
        if lo_f > hi_f:
            raise ValueError(f"empty interval: lo={lo_f} > hi={hi_f}")
        return max(
            float(self.partial_expectation_above(lo_f))
            - float(self.partial_expectation_above(hi_f)),
            0.0,
        )

    def probability_between(self, lo, hi) -> float:
        lo_f = float(lo)
        hi_f = float(hi)
        if lo_f > hi_f:
            raise ValueError(f"empty interval: lo={lo_f} > hi={hi_f}")
        return max(float(self.cdf(hi_f)) - float(self.cdf(lo_f)), 0.0)

    def quantile(self, q):
        """Inverse CDF by bisection between component quantile envelopes."""
        q = np.asarray(q, dtype=float)
        if np.any((q <= 0.0) | (q >= 1.0)):
            raise ValueError("quantile argument must lie strictly in (0, 1)")
        z = np.asarray(norm_ppf(q), dtype=float)
        # the mixture quantile lies between the min and max component quantiles
        comp = np.exp(z[..., None] * self._s + self._m)
        lo = comp.min(axis=-1)
        hi = comp.max(axis=-1)
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            below = np.asarray(self.cdf(mid)) < q
            lo = np.where(below, mid, lo)
            hi = np.where(below, hi, mid)
            if np.max(hi - lo) <= 1e-14 * np.max(hi):
                break
        out = 0.5 * (lo + hi)
        return out if out.ndim else float(out)

    def effective_support(self, tail_mass: float = 1e-12):
        """A ``(lo, hi)`` interval carrying all but ``2 * tail_mass`` mass.

        Uses the min/max of the component quantiles -- conservative (the
        enclosed mass is at least the target) and cheap.
        """
        if not 0.0 < tail_mass < 0.5:
            raise ValueError(f"tail_mass must be in (0, 0.5), got {tail_mass}")
        z_lo = float(norm_ppf(tail_mass))
        z_hi = float(norm_ppf(1.0 - tail_mass))
        lo = float(np.min(np.exp(self._m + self._s * z_lo)))
        hi = float(np.max(np.exp(self._m + self._s * z_hi)))
        return lo, hi

    def sample(self, rng, size=None) -> np.ndarray:
        u = rng.uniform(size=size)
        z = rng.standard_normal(size)
        cum = np.cumsum(self._w)
        cum[-1] = 1.0
        idx = np.minimum(
            np.searchsorted(cum, np.asarray(u, dtype=float), side="right"),
            len(self.weights) - 1,
        )
        return np.exp(self._m[idx] + self._s[idx] * np.asarray(z, dtype=float))


# --------------------------------------------------------------------- #
# lognormal registration
# --------------------------------------------------------------------- #


def _validate_lognormal(params: Mapping[str, float]) -> None:
    if params:
        raise ValueError("lognormal law takes no parameters")


def _build_lognormal(
    params: Mapping[str, float], mu: float, sigma: float, tau: float
) -> LognormalStepKernel:
    return LognormalStepKernel(mu=mu, sigma=sigma, tau=tau)


register_law(
    "lognormal",
    version=1,
    defaults={},
    validate=_validate_lognormal,
    build=_build_lognormal,
)


# StepKernel is a duck-typed protocol: LognormalStepKernel | MixtureStepKernel.
# Both expose pieces / survival_from_logs / mean_factor / law /
# sample_from_normal / kind / is_lognormal.
try:  # typing-only alias; avoids a hard typing_extensions dependency
    from typing import Union

    StepKernel = Union[LognormalStepKernel, MixtureStepKernel]
except Exception:  # pragma: no cover
    StepKernel = object  # type: ignore[assignment]


# Importing the implementations registers "merton" and "regime"; they
# import back from this module, which is safe because every name they
# need is defined above.
from repro.stochastic import jumpdiffusion as _jumpdiffusion  # noqa: E402,F401
from repro.stochastic import regime as _regime  # noqa: E402,F401
