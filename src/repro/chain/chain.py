"""A simulated blockchain with deterministic timing.

One :class:`Blockchain` owns a ledger, a mempool, an HTLC registry and
a block history, and is driven by the shared
:class:`~repro.chain.events.SimulationClock`:

* a transaction submitted at ``t`` becomes **visible** in the mempool
  at ``t + mempool_delay`` and **confirms** at
  ``t + confirmation_time`` (the paper's Assumption 1: constant
  confirmation times);
* on confirmation the transaction's operation executes atomically; a
  raised :class:`~repro.chain.errors.ChainError` fails the transaction
  with no side effects;
* when an HTLC's expiry passes with no confirmed claim, the chain
  automatically initiates a refund transaction (the paper's "the smart
  contract expires and the assets are unlocked and returned").
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.chain.block import Block
from repro.chain.errors import ChainError
from repro.chain.events import SimulationClock
from repro.chain.htlc import HTLC, ClaimOp, DeployHTLCOp, HTLCState, RefundOp
from repro.chain.ledger import Ledger
from repro.chain.mempool import Mempool
from repro.chain.transaction import Operation, Transaction, TxStatus

__all__ = ["Blockchain", "FEE_SINK", "SYSTEM_SENDER"]

SYSTEM_SENDER = "system"
FEE_SINK = "fees"


class Blockchain:
    """One chain: ledger + mempool + contracts + timing rules."""

    def __init__(
        self,
        name: str,
        token: str,
        clock: SimulationClock,
        confirmation_time: float,
        mempool_delay: float,
        fee: float = 0.0,
        confirmation_jitter: float = 0.0,
        jitter_rng=None,
    ) -> None:
        if not confirmation_time > 0.0:
            raise ValueError(
                f"confirmation_time must be positive, got {confirmation_time}"
            )
        if not 0.0 < mempool_delay < confirmation_time:
            raise ValueError(
                "need 0 < mempool_delay < confirmation_time, got "
                f"{mempool_delay} vs {confirmation_time}"
            )
        if fee < 0.0:
            raise ValueError(f"fee must be non-negative, got {fee}")
        if confirmation_jitter < 0.0:
            raise ValueError(
                f"confirmation_jitter must be non-negative, got {confirmation_jitter}"
            )
        if confirmation_jitter > 0.0 and jitter_rng is None:
            raise ValueError("confirmation_jitter requires a jitter_rng")
        self.confirmation_jitter = confirmation_jitter
        self._jitter_rng = jitter_rng
        self.name = name
        self.clock = clock
        self.confirmation_time = confirmation_time
        self.mempool_delay = mempool_delay
        self.fee = fee
        self.ledger = Ledger(token)
        self.mempool = Mempool()
        self.blocks: List[Block] = []
        self.transactions: List[Transaction] = []
        self._htlcs: Dict[int, HTLC] = {}
        if fee > 0.0:
            self.ledger.open_account(FEE_SINK)

    # ------------------------------------------------------------------ #
    # accounts
    # ------------------------------------------------------------------ #

    def open_account(self, name: str, balance: float = 0.0) -> None:
        """Create an account with an initial balance."""
        self.ledger.open_account(name, balance)

    def balance(self, name: str) -> float:
        """Current confirmed balance of ``name``."""
        return self.ledger.balance(name)

    # ------------------------------------------------------------------ #
    # transaction lifecycle
    # ------------------------------------------------------------------ #

    def _draw_confirmation_time(self) -> float:
        """The (possibly random) confirmation delay for one transaction.

        With jitter ``j``, the delay is ``tau * (1 + j * u)`` with
        ``u ~ Uniform(-1, 1)``, floored just above the mempool delay so
        visibility always precedes confirmation. Relaxes the paper's
        Assumption 1 (constant confirmation time) for robustness
        studies.
        """
        if self.confirmation_jitter <= 0.0:
            return self.confirmation_time
        u = float(self._jitter_rng.uniform(-1.0, 1.0))
        delay = self.confirmation_time * (1.0 + self.confirmation_jitter * u)
        return max(delay, self.mempool_delay * 1.000001)

    def submit(self, sender: str, operation: Operation) -> Transaction:
        """Submit an operation; visibility and confirmation are scheduled."""
        now = self.clock.now
        tx = Transaction(
            sender=sender,
            operation=operation,
            submitted_at=now,
            visible_at=now + self.mempool_delay,
            confirm_at=now + self._draw_confirmation_time(),
        )
        self.transactions.append(tx)
        self.clock.schedule(tx.visible_at, lambda: self._make_visible(tx))
        self.clock.schedule(tx.confirm_at, lambda: self._confirm(tx))
        return tx

    def _make_visible(self, tx: Transaction) -> None:
        if tx.status is TxStatus.SUBMITTED:
            tx.mark_visible()
            self.mempool.add(tx)

    def _confirm(self, tx: Transaction) -> None:
        if tx.status is not TxStatus.VISIBLE:
            return  # already failed through some other path
        self.mempool.remove(tx)
        if not self._charge_fee(tx):
            tx.mark_failed(
                f"{tx.sender!r} cannot cover the {self.fee} {self.ledger.token} fee"
            )
            return
        try:
            tx.operation.apply(self, self.clock.now)
        except ChainError as exc:
            # the fee is consumed even when the operation fails, as on a
            # real chain; only the operation's own effects are rolled back
            tx.mark_failed(str(exc))
            return
        tx.mark_confirmed()
        self._append_block(tx)

    def _charge_fee(self, tx: Transaction) -> bool:
        """Collect the flat fee from the sender; system txs are exempt."""
        if self.fee <= 0.0 or tx.sender == SYSTEM_SENDER:
            return True
        try:
            self.ledger.transfer(tx.sender, FEE_SINK, self.fee)
        except ChainError:
            return False
        return True

    def _append_block(self, tx: Transaction) -> None:
        height = self.blocks[-1].height + 1 if self.blocks else 0
        self.blocks.append(
            Block(height=height, timestamp=self.clock.now, transactions=(tx,))
        )

    # ------------------------------------------------------------------ #
    # HTLC conveniences
    # ------------------------------------------------------------------ #

    def deploy_htlc(
        self,
        sender: str,
        recipient: str,
        amount: float,
        hashlock: bytes,
        expiry: float,
    ) -> "tuple[Transaction, HTLC]":
        """Submit an HTLC deployment; funds lock when the tx confirms."""
        contract = HTLC(
            sender=sender,
            recipient=recipient,
            amount=amount,
            hashlock=hashlock,
            expiry=expiry,
        )
        tx = self.submit(sender, DeployHTLCOp(contract))
        return tx, contract

    def claim_htlc(self, contract: HTLC, claimer: str, preimage: bytes) -> Transaction:
        """Submit a claim revealing ``preimage``."""
        return self.submit(claimer, ClaimOp(contract, preimage))

    def register_htlc(self, contract: HTLC) -> None:
        """Index a contract once its deployment confirmed."""
        self._htlcs[contract.contract_id] = contract

    def htlc(self, contract_id: int) -> HTLC:
        """Look up a confirmed contract."""
        return self._htlcs[contract_id]

    def schedule_refund_check(self, contract: HTLC) -> None:
        """Arrange the automatic refund of ``contract`` at its expiry.

        The check re-arms itself while a claim that could still confirm
        in time is pending (a claim confirming *exactly at* expiry is
        valid, Eqs. (8)-(9)); once no such claim exists and the
        contract is still locked, a refund transaction is initiated.
        """
        self.clock.schedule(contract.expiry, lambda: self._refund_check(contract))

    def _refund_check(self, contract: HTLC) -> None:
        if contract.state is not HTLCState.LOCKED:
            return
        pending_claim = self._pending_claim_deadline(contract)
        if pending_claim is not None:
            # re-check right after the in-flight claim resolves; the new
            # event sorts after the claim's confirmation at equal time
            self.clock.schedule(
                max(pending_claim, contract.expiry),
                lambda: self._refund_check(contract),
            )
            return
        self.submit(SYSTEM_SENDER, RefundOp(contract))

    def _pending_claim_deadline(self, contract: HTLC) -> Optional[float]:
        """Latest confirm time of any in-flight claim that could beat expiry."""
        deadline = None
        for tx in self.transactions:
            if tx.is_final:
                continue
            op = tx.operation
            if (
                isinstance(op, ClaimOp)
                and op.contract.contract_id == contract.contract_id
                and tx.confirm_at <= contract.expiry
            ):
                deadline = tx.confirm_at if deadline is None else max(deadline, tx.confirm_at)
        return deadline

    # ------------------------------------------------------------------ #
    # observation
    # ------------------------------------------------------------------ #

    def observe_preimage(self, hashlock: bytes) -> Optional[bytes]:
        """Look for a preimage of ``hashlock`` revealed on this chain.

        Checks confirmed contracts first, then the mempool (the paper's
        early observation channel).
        """
        for contract in self._htlcs.values():
            if contract.hashlock == hashlock and contract.revealed_preimage:
                return contract.revealed_preimage
        return self.mempool.find_revealed_preimage(hashlock)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Blockchain({self.name!r}, token={self.ledger.token!r}, "
            f"now={self.clock.now}, blocks={len(self.blocks)})"
        )
