"""Hash time lock contracts (paper Section II-B).

An :class:`HTLC` locks ``amount`` of the chain's token from ``sender``
to ``recipient`` under a hashlock ``H`` and an absolute expiry ``t_exp``:

* ``claim`` -- the recipient presents a preimage of ``H``; valid while
  the contract is LOCKED and the claim *confirms* no later than
  ``t_exp`` (the paper's Eqs. (8)-(9) are exactly this constraint);
* refund -- if no claim has confirmed by ``t_exp``, the chain
  automatically initiates a refund transaction returning the funds to
  the sender, which lands one confirmation time later (the paper's
  ``t7``/``t8``).

The contract holds the locked funds in its own ledger account, so value
is conserved and observable at every instant.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.chain.crypto import verify_preimage
from repro.chain.errors import ContractStateError
from repro.chain.transaction import Operation

__all__ = ["HTLCState", "HTLC", "DeployHTLCOp", "ClaimOp", "RefundOp"]

_CONTRACT_COUNTER = itertools.count(1)


class HTLCState(str, enum.Enum):
    """Contract lifecycle."""

    PENDING = "pending"  # deploy submitted, not yet confirmed
    LOCKED = "locked"
    CLAIMED = "claimed"
    REFUNDED = "refunded"


@dataclass
class HTLC:
    """One hash time lock contract instance."""

    sender: str
    recipient: str
    amount: float
    hashlock: bytes
    expiry: float
    contract_id: int = field(default_factory=lambda: next(_CONTRACT_COUNTER))
    state: HTLCState = HTLCState.PENDING
    revealed_preimage: Optional[bytes] = None
    locked_at: Optional[float] = None
    resolved_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.amount <= 0.0:
            raise ContractStateError(f"HTLC amount must be positive, got {self.amount}")
        if self.sender == self.recipient:
            raise ContractStateError("HTLC sender and recipient must differ")

    @property
    def account(self) -> str:
        """Ledger account holding the locked funds."""
        return f"htlc:{self.contract_id}"


class DeployHTLCOp(Operation):
    """Lock the sender's funds into a fresh HTLC on confirmation."""

    def __init__(self, contract: HTLC) -> None:
        self.contract = contract

    def apply(self, chain, now: float) -> None:
        contract = self.contract
        if contract.state is not HTLCState.PENDING:
            raise ContractStateError(
                f"HTLC {contract.contract_id} already {contract.state}"
            )
        if now > contract.expiry:
            raise ContractStateError(
                f"HTLC {contract.contract_id} would confirm after its own expiry"
            )
        chain.ledger.open_account(contract.account)
        chain.ledger.transfer(contract.sender, contract.account, contract.amount)
        contract.state = HTLCState.LOCKED
        contract.locked_at = now
        chain.register_htlc(contract)
        chain.schedule_refund_check(contract)

    def describe(self) -> str:
        return (
            f"deploy HTLC {self.contract.contract_id}: "
            f"{self.contract.amount} from {self.contract.sender} to "
            f"{self.contract.recipient}, expiry {self.contract.expiry}"
        )


class ClaimOp(Operation):
    """Unlock an HTLC by revealing the preimage."""

    def __init__(self, contract: HTLC, preimage: bytes) -> None:
        self.contract = contract
        self.preimage = preimage

    def reveals(self, hashlock: bytes) -> bool:
        """Whether this claim's preimage opens ``hashlock``.

        Used by mempool observers (the secret leaks at visibility time,
        before confirmation).
        """
        return verify_preimage(self.preimage, hashlock)

    def apply(self, chain, now: float) -> None:
        contract = self.contract
        if contract.state is not HTLCState.LOCKED:
            raise ContractStateError(
                f"cannot claim HTLC {contract.contract_id} in state {contract.state}"
            )
        if not verify_preimage(self.preimage, contract.hashlock):
            raise ContractStateError(
                f"invalid preimage for HTLC {contract.contract_id}"
            )
        if now > contract.expiry:
            raise ContractStateError(
                f"claim of HTLC {contract.contract_id} confirmed at {now}, "
                f"after expiry {contract.expiry}"
            )
        chain.ledger.transfer(contract.account, contract.recipient, contract.amount)
        contract.state = HTLCState.CLAIMED
        contract.revealed_preimage = self.preimage
        contract.resolved_at = now

    def describe(self) -> str:
        return f"claim HTLC {self.contract.contract_id}"


class RefundOp(Operation):
    """Return expired-HTLC funds to the sender (chain-initiated)."""

    def __init__(self, contract: HTLC) -> None:
        self.contract = contract

    def apply(self, chain, now: float) -> None:
        contract = self.contract
        if contract.state is not HTLCState.LOCKED:
            raise ContractStateError(
                f"cannot refund HTLC {contract.contract_id} in state {contract.state}"
            )
        if now <= contract.expiry:
            raise ContractStateError(
                f"refund of HTLC {contract.contract_id} applied at {now}, "
                f"before expiry {contract.expiry}"
            )
        chain.ledger.transfer(contract.account, contract.sender, contract.amount)
        contract.state = HTLCState.REFUNDED
        contract.resolved_at = now

    def describe(self) -> str:
        return f"refund HTLC {self.contract.contract_id}"
