"""Discrete-event simulation clock.

A single :class:`SimulationClock` is shared by both chains and the
protocol engine. Callbacks are scheduled at absolute times and fired in
``(time, insertion order)`` order when the clock advances, which keeps
episodes fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Tuple

from repro.chain.errors import ClockError

__all__ = ["SimulationClock"]


class SimulationClock:
    """Monotonically advancing simulation time with scheduled callbacks."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()

    @property
    def now(self) -> float:
        """Current simulation time (hours)."""
        return self._now

    def schedule(self, when: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` when the clock reaches ``when``.

        Scheduling in the past is an error; scheduling exactly at the
        current time fires on the next :meth:`advance_to` call (events
        are processed only while advancing, never re-entrantly).
        """
        if when < self._now:
            raise ClockError(
                f"cannot schedule at {when}; clock is already at {self._now}"
            )
        heapq.heappush(self._queue, (float(when), next(self._counter), callback))

    def advance_to(self, when: float) -> None:
        """Advance time to ``when``, firing every due callback in order.

        Callbacks may schedule further events (at or after their own
        fire time); those are honoured within the same advance when due.
        """
        if when < self._now:
            raise ClockError(f"cannot rewind clock from {self._now} to {when}")
        while self._queue and self._queue[0][0] <= when:
            fire_at, _seq, callback = heapq.heappop(self._queue)
            self._now = max(self._now, fire_at)
            callback()
        self._now = float(when)

    def advance_by(self, delta: float) -> None:
        """Advance time by a non-negative ``delta``."""
        if delta < 0.0:
            raise ClockError(f"cannot advance by negative delta {delta}")
        self.advance_to(self._now + delta)

    def run_until_idle(self, horizon: float = float("inf")) -> None:
        """Advance through all pending events (bounded by ``horizon``)."""
        while self._queue and self._queue[0][0] <= horizon:
            self.advance_to(self._queue[0][0])
        if horizon != float("inf"):
            self.advance_to(horizon)

    @property
    def pending_events(self) -> int:
        """Number of callbacks not yet fired."""
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimulationClock(now={self._now}, pending={self.pending_events})"
