"""Collateral escrow with a trusted cross-chain Oracle (paper Section IV).

Section IV assumes a smart contract on Chain_a that

1. charges both agents the same collateral ``Q`` before the swap,
2. is connected to an Oracle observing outcomes on both chains, and
3. settles: on success each agent's deposit returns; a deviating
   agent's deposit is forfeited to the counterparty.

The paper itself notes this Oracle is "purely theoretical"; here it is
a perfect observer implemented as part of the simulation (see DESIGN.md
substitutions). Settlement transfers are ordinary Chain_a transactions,
so they take ``tau_a`` to land -- matching the discounting conventions
in Eqs. (33)-(39).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict

from repro.chain.chain import SYSTEM_SENDER, Blockchain
from repro.chain.errors import ContractStateError, OracleUnavailableError
from repro.chain.transaction import Operation
from repro.faults.injector import build_injector

__all__ = ["EscrowState", "CollateralEscrow", "Oracle"]

_ESCROW_COUNTER = itertools.count(1)


class EscrowState(str, enum.Enum):
    """Escrow lifecycle."""

    OPEN = "open"  # deposits being collected
    ACTIVE = "active"  # both deposits locked, swap in progress
    SETTLED = "settled"


@dataclass
class CollateralEscrow:
    """The deposit-holding contract on Chain_a."""

    alice: str
    bob: str
    amount: float
    escrow_id: int = field(default_factory=lambda: next(_ESCROW_COUNTER))
    state: EscrowState = EscrowState.OPEN
    deposits: Dict[str, float] = field(default_factory=dict)
    released: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.amount < 0.0:
            raise ContractStateError(
                f"collateral amount must be non-negative, got {self.amount}"
            )

    @property
    def account(self) -> str:
        """Ledger account holding the deposits."""
        return f"escrow:{self.escrow_id}"

    @property
    def fully_funded(self) -> bool:
        """Whether both agents have deposited."""
        return (
            self.deposits.get(self.alice, 0.0) >= self.amount
            and self.deposits.get(self.bob, 0.0) >= self.amount
        )


class DepositOp(Operation):
    """One agent's collateral deposit confirming into the escrow."""

    def __init__(self, escrow: CollateralEscrow, depositor: str) -> None:
        self.escrow = escrow
        self.depositor = depositor

    def apply(self, chain: Blockchain, now: float) -> None:
        escrow = self.escrow
        if escrow.state is not EscrowState.OPEN:
            raise ContractStateError(
                f"escrow {escrow.escrow_id} not accepting deposits ({escrow.state})"
            )
        if self.depositor not in (escrow.alice, escrow.bob):
            raise ContractStateError(
                f"{self.depositor!r} is not a party to escrow {escrow.escrow_id}"
            )
        if not chain.ledger.has_account(escrow.account):
            chain.ledger.open_account(escrow.account)
        chain.ledger.transfer(self.depositor, escrow.account, escrow.amount)
        escrow.deposits[self.depositor] = (
            escrow.deposits.get(self.depositor, 0.0) + escrow.amount
        )
        if escrow.fully_funded:
            escrow.state = EscrowState.ACTIVE

    def describe(self) -> str:
        return f"deposit {self.escrow.amount} into escrow {self.escrow.escrow_id}"


class PayoutOp(Operation):
    """An Oracle-directed release from the escrow."""

    def __init__(self, escrow: CollateralEscrow, recipient: str, amount: float) -> None:
        self.escrow = escrow
        self.recipient = recipient
        self.amount = amount

    def apply(self, chain: Blockchain, now: float) -> None:
        if self.amount <= 0.0:
            return
        chain.ledger.transfer(self.escrow.account, self.recipient, self.amount)
        self.escrow.released[self.recipient] = (
            self.escrow.released.get(self.recipient, 0.0) + self.amount
        )

    def describe(self) -> str:
        return (
            f"escrow {self.escrow.escrow_id} pays {self.amount} to {self.recipient}"
        )


class Oracle:
    """Perfect cross-chain observer settling the escrow per Section IV.

    The protocol engine reports the observable events; the Oracle turns
    them into Chain_a payout transactions:

    * Bob locks the Chain_b HTLC -> Bob's deposit returns (decided at
      ``t3``, lands at ``t3 + tau_a``);
    * Alice reveals the secret -> Alice's deposit returns (decided at
      ``t4``, lands at ``t4 + tau_a``);
    * Alice waives at ``t3`` -> her deposit goes to Bob;
    * Bob walks away at ``t2`` -> both deposits go to Alice (decided at
      ``t3``, when the Oracle can be sure no Chain_b HTLC appeared);
    * neither engages at ``t1`` -> both deposits return.

    ``faults`` optionally injects ``oracle_outage``: a settlement call
    that fires raises :class:`OracleUnavailableError` *before* touching
    the escrow, so the caller can retry the identical call later.
    """

    def __init__(
        self, chain_a: Blockchain, escrow: CollateralEscrow, faults=None
    ) -> None:
        self.chain_a = chain_a
        self.escrow = escrow
        self.faults = build_injector(faults)
        self._alice_settled = False
        self._bob_settled = False

    def _check_available(self, action: str) -> None:
        if self.faults.enabled and self.faults.fires("oracle_outage", key=action):
            raise OracleUnavailableError(
                f"oracle outage: cannot settle {action!r} right now"
            )

    def _payout(self, recipient: str, amount: float) -> None:
        self.chain_a.submit(SYSTEM_SENDER, PayoutOp(self.escrow, recipient, amount))

    def _maybe_close(self) -> None:
        if self._alice_settled and self._bob_settled:
            self.escrow.state = EscrowState.SETTLED

    def release_bob_deposit(self) -> None:
        """Bob discharged his obligation (Chain_b HTLC observed)."""
        self._check_available("release_bob_deposit")
        if self._bob_settled:
            raise ContractStateError("Bob's deposit already settled")
        self._payout(self.escrow.bob, self.escrow.amount)
        self._bob_settled = True
        self._maybe_close()

    def release_alice_deposit(self) -> None:
        """Alice discharged her obligation (secret revealed)."""
        self._check_available("release_alice_deposit")
        if self._alice_settled:
            raise ContractStateError("Alice's deposit already settled")
        self._payout(self.escrow.alice, self.escrow.amount)
        self._alice_settled = True
        self._maybe_close()

    def forfeit_alice_to_bob(self) -> None:
        """Alice waived at ``t3``; her deposit compensates Bob."""
        self._check_available("forfeit_alice_to_bob")
        if self._alice_settled:
            raise ContractStateError("Alice's deposit already settled")
        self._payout(self.escrow.bob, self.escrow.amount)
        self._alice_settled = True
        self._maybe_close()

    def forfeit_bob_to_alice(self) -> None:
        """Bob walked away at ``t2``; both deposits go to Alice."""
        self._check_available("forfeit_bob_to_alice")
        if self._bob_settled or self._alice_settled:
            raise ContractStateError("escrow already partially settled")
        self._payout(self.escrow.alice, 2.0 * self.escrow.amount)
        self._bob_settled = True
        self._alice_settled = True
        self._maybe_close()

    def return_both(self) -> None:
        """Swap never engaged; both deposits return."""
        self._check_available("return_both")
        if self._bob_settled or self._alice_settled:
            raise ContractStateError("escrow already partially settled")
        self._payout(self.escrow.alice, self.escrow.amount)
        self._payout(self.escrow.bob, self.escrow.amount)
        self._alice_settled = True
        self._bob_settled = True
        self._maybe_close()
