"""The mempool: pre-confirmation transaction visibility.

The paper's ``eps_b`` is the delay after which an initiated transaction
can be *looked up* in Chain_b's mempool -- crucially before it
confirms, which is what lets Bob extract Alice's revealed secret at
``t4 = t3 + eps_b`` (Section II-B, III-B).

:class:`Mempool` indexes transactions that are visible but not yet
final, and supports scanning for revealed preimages.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.chain.transaction import Transaction, TxStatus

__all__ = ["Mempool"]


class Mempool:
    """Visible, not-yet-confirmed transactions on one chain."""

    def __init__(self) -> None:
        self._visible: List[Transaction] = []

    def add(self, tx: Transaction) -> None:
        """Register a transaction that just became visible."""
        if tx.status is not TxStatus.VISIBLE:
            raise ValueError(f"tx {tx.txid} is {tx.status}, not visible")
        self._visible.append(tx)

    def remove(self, tx: Transaction) -> None:
        """Drop a transaction that confirmed or failed."""
        self._visible = [t for t in self._visible if t.txid != tx.txid]

    def __iter__(self) -> Iterator[Transaction]:
        return iter(list(self._visible))

    def __len__(self) -> int:
        return len(self._visible)

    def find_revealed_preimage(self, hashlock: bytes) -> Optional[bytes]:
        """Scan visible claim operations for a preimage opening ``hashlock``.

        This is the observation primitive behind the paper's step 4:
        "as early as when the secret is revealed in the mempool of
        Chain_b (even before the transfer is confirmed), Bob can use
        the secret".
        """
        from repro.chain.htlc import ClaimOp  # local import to avoid a cycle

        for tx in self._visible:
            op = tx.operation
            if isinstance(op, ClaimOp) and op.reveals(hashlock):
                return op.preimage
        return None
