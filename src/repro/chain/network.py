"""The two-chain world a swap runs in.

:class:`TwoChainNetwork` wires Chain_a and Chain_b to one shared
simulation clock, opens the agents' accounts, and exposes the timing
constants in the paper's notation (``tau_a``, ``tau_b``, ``eps_b``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.chain.chain import Blockchain
from repro.chain.events import SimulationClock
from repro.core.parameters import SwapParameters

__all__ = ["TwoChainNetwork"]

ALICE = "alice"
BOB = "bob"
TOKEN_A = "TOKEN_A"
TOKEN_B = "TOKEN_B"


class TwoChainNetwork:
    """Chain_a + Chain_b + shared clock, configured from SwapParameters.

    Chain_a's mempool delay has no role in the paper's timeline (only
    ``eps_b`` appears); it is set to half the confirmation time simply
    to satisfy the substrate's ``0 < eps < tau`` invariant.
    """

    def __init__(
        self,
        params: SwapParameters,
        clock: "SimulationClock | None" = None,
        fee_a: float = 0.0,
        fee_b: float = 0.0,
        confirmation_jitter: float = 0.0,
        jitter_rng=None,
    ) -> None:
        self.params = params
        self.clock = clock if clock is not None else SimulationClock()
        jitter_a = jitter_b = None
        if confirmation_jitter > 0.0:
            if jitter_rng is None:
                raise ValueError("confirmation_jitter requires a jitter_rng")
            jitter_a, jitter_b = jitter_rng.spawn(2)
        self.chain_a = Blockchain(
            name="chain_a",
            token=TOKEN_A,
            clock=self.clock,
            confirmation_time=params.tau_a,
            mempool_delay=0.5 * params.tau_a,
            fee=fee_a,
            confirmation_jitter=confirmation_jitter,
            jitter_rng=jitter_a,
        )
        self.chain_b = Blockchain(
            name="chain_b",
            token=TOKEN_B,
            clock=self.clock,
            confirmation_time=params.tau_b,
            mempool_delay=params.eps_b,
            fee=fee_b,
            confirmation_jitter=confirmation_jitter,
            jitter_rng=jitter_b,
        )

    def fund_agents(
        self,
        pstar: float,
        collateral: float = 0.0,
        slack: float = 0.0,
    ) -> None:
        """Open both agents' accounts with exactly the balances a swap needs.

        Alice holds ``pstar (+ collateral + slack)`` Token_a; Bob holds
        1 Token_b and ``collateral + slack`` Token_a (deposits live on
        Chain_a for both agents, per Section IV assumption 1). When the
        chains charge fees, pass ``slack`` covering each agent's worst-
        case fee bill -- fees are reserved out of pocket at confirmation.
        """
        slack_b = slack if (self.chain_b.fee > 0.0 or self.chain_a.fee > 0.0) else 0.0
        self.chain_a.open_account(ALICE, pstar + collateral + slack)
        self.chain_a.open_account(BOB, collateral + slack)
        self.chain_b.open_account(ALICE, slack_b)
        self.chain_b.open_account(BOB, 1.0 + slack_b)

    def balances(self) -> Dict[str, Dict[str, float]]:
        """Both agents' balances on both chains."""
        return {
            ALICE: {
                TOKEN_A: self.chain_a.balance(ALICE),
                TOKEN_B: self.chain_b.balance(ALICE),
            },
            BOB: {
                TOKEN_A: self.chain_a.balance(BOB),
                TOKEN_B: self.chain_b.balance(BOB),
            },
        }

    def advance_to(self, when: float) -> None:
        """Advance the shared clock (drives both chains)."""
        self.clock.advance_to(when)

    def settle_all(self, horizon: float) -> None:
        """Run every pending event up to ``horizon`` (refunds included)."""
        self.clock.run_until_idle(horizon)
