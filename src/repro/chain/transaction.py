"""Transactions and their lifecycle.

A transaction wraps one *operation* (a contract call or transfer) and
moves through the states::

    SUBMITTED --(eps)--> VISIBLE --(tau)--> CONFIRMED | FAILED

``VISIBLE`` models the mempool: other participants can read the
transaction's payload -- including a revealed preimage -- before it
confirms (this is exactly how Bob learns Alice's secret at
``t4 = t3 + eps_b`` in the paper).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["TxStatus", "Operation", "Transaction"]

_TXID_COUNTER = itertools.count(1)


class TxStatus(str, enum.Enum):
    """Lifecycle states of a transaction."""

    SUBMITTED = "submitted"
    VISIBLE = "visible"
    CONFIRMED = "confirmed"
    FAILED = "failed"


class Operation:
    """Base class for on-chain operations.

    Subclasses implement :meth:`apply`, which runs at confirmation time
    against the chain state and may raise a
    :class:`~repro.chain.errors.ChainError` (the transaction then
    fails without side effects -- operations must validate before
    mutating).
    """

    def apply(self, chain, now: float) -> None:  # pragma: no cover - interface
        """Execute the operation against ``chain`` at time ``now``."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable label used in logs and error messages."""
        return type(self).__name__


@dataclass
class Transaction:
    """One submitted operation with its timing metadata."""

    sender: str
    operation: Operation
    submitted_at: float
    visible_at: float
    confirm_at: float
    txid: int = field(default_factory=lambda: next(_TXID_COUNTER))
    status: TxStatus = TxStatus.SUBMITTED
    failure_reason: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.submitted_at <= self.visible_at <= self.confirm_at:
            raise ValueError(
                "transaction timing must satisfy "
                f"submitted <= visible <= confirm; got {self.submitted_at}, "
                f"{self.visible_at}, {self.confirm_at}"
            )

    @property
    def is_final(self) -> bool:
        """Whether the transaction reached a terminal state."""
        return self.status in (TxStatus.CONFIRMED, TxStatus.FAILED)

    def mark_visible(self) -> None:
        """Transition SUBMITTED -> VISIBLE."""
        if self.status is not TxStatus.SUBMITTED:
            raise ValueError(f"tx {self.txid} is {self.status}, cannot become visible")
        self.status = TxStatus.VISIBLE

    def mark_confirmed(self) -> None:
        """Transition VISIBLE -> CONFIRMED."""
        if self.status is not TxStatus.VISIBLE:
            raise ValueError(f"tx {self.txid} is {self.status}, cannot confirm")
        self.status = TxStatus.CONFIRMED

    def mark_failed(self, reason: str) -> None:
        """Transition to FAILED with a reason."""
        if self.is_final:
            raise ValueError(f"tx {self.txid} already final ({self.status})")
        self.status = TxStatus.FAILED
        self.failure_reason = reason
