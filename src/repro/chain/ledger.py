"""Per-chain account balances.

A :class:`Ledger` tracks one token's balances for named accounts, with
explicit account creation, non-negative balances, and conservation
checks. Contracts (HTLCs, escrows) hold funds in their own accounts, so
"locked" value is always visible on the ledger.
"""

from __future__ import annotations

from typing import Dict

from repro.chain.errors import InsufficientFunds, UnknownAccount

__all__ = ["Ledger"]

_AMOUNT_TOL = 1e-12


class Ledger:
    """Balances of a single token on a single chain."""

    def __init__(self, token: str) -> None:
        if not token:
            raise ValueError("token symbol must be non-empty")
        self.token = token
        self._balances: Dict[str, float] = {}

    def open_account(self, name: str, balance: float = 0.0) -> None:
        """Create an account; idempotent only for zero-balance re-opens."""
        if not name:
            raise ValueError("account name must be non-empty")
        if balance < 0.0:
            raise ValueError(f"initial balance must be non-negative, got {balance}")
        if name in self._balances:
            raise ValueError(f"account {name!r} already exists")
        self._balances[name] = float(balance)

    def has_account(self, name: str) -> bool:
        """Whether the account exists."""
        return name in self._balances

    def balance(self, name: str) -> float:
        """Current balance of ``name``."""
        try:
            return self._balances[name]
        except KeyError:
            raise UnknownAccount(f"no account {name!r} on {self.token} ledger") from None

    def deposit(self, name: str, amount: float) -> None:
        """Credit ``amount`` (used only by tests/genesis; swaps transfer)."""
        if amount < 0.0:
            raise ValueError(f"deposit amount must be non-negative, got {amount}")
        if name not in self._balances:
            raise UnknownAccount(f"no account {name!r} on {self.token} ledger")
        self._balances[name] += amount

    def transfer(self, sender: str, recipient: str, amount: float) -> None:
        """Move ``amount`` from ``sender`` to ``recipient`` atomically."""
        if amount < 0.0:
            raise ValueError(f"transfer amount must be non-negative, got {amount}")
        if sender not in self._balances:
            raise UnknownAccount(f"no account {sender!r} on {self.token} ledger")
        if recipient not in self._balances:
            raise UnknownAccount(f"no account {recipient!r} on {self.token} ledger")
        if self._balances[sender] < amount - _AMOUNT_TOL:
            raise InsufficientFunds(
                f"{sender!r} has {self._balances[sender]} {self.token}, "
                f"needs {amount}"
            )
        self._balances[sender] -= amount
        self._balances[recipient] += amount
        # clamp tiny float residue so balances stay exactly non-negative
        if -_AMOUNT_TOL < self._balances[sender] < 0.0:
            self._balances[sender] = 0.0

    def total_supply(self) -> float:
        """Sum of all balances (conserved by transfers; checked in tests)."""
        return sum(self._balances.values())

    def snapshot(self) -> Dict[str, float]:
        """Copy of all balances."""
        return dict(self._balances)
