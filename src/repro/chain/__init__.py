"""Simulated two-chain blockchain substrate.

The analysis in :mod:`repro.core` assumes an execution environment with
three timing constants per chain -- confirmation time ``tau``, mempool
visibility delay ``eps`` -- and HTLC smart contracts with hashlock +
timelock semantics. This package implements that environment faithfully
enough that the protocol engine (:mod:`repro.protocol`) can *execute*
swaps and the Monte Carlo layer can measure outcomes:

* :mod:`repro.chain.events` -- discrete-event simulation clock;
* :mod:`repro.chain.crypto` -- secrets, SHA-256 hashlocks, preimage
  verification;
* :mod:`repro.chain.ledger` -- per-chain account balances;
* :mod:`repro.chain.transaction` / :mod:`repro.chain.block` /
  :mod:`repro.chain.mempool` -- transaction lifecycle: submitted ->
  visible in the mempool (after ``eps``) -> confirmed in a block
  (after ``tau``);
* :mod:`repro.chain.htlc` -- hash time lock contracts with automatic
  refund at expiry (paper Section II-B);
* :mod:`repro.chain.chain` -- a chain tying the above together;
* :mod:`repro.chain.oracle` -- the Section IV collateral escrow with a
  (simulated, trusted) cross-chain Oracle;
* :mod:`repro.chain.network` -- the two-chain world the protocol runs
  in.
"""

from repro.chain.chain import Blockchain
from repro.chain.crypto import Secret, hashlock_of, new_secret, verify_preimage
from repro.chain.errors import (
    ChainError,
    ContractStateError,
    InsufficientFunds,
    UnknownAccount,
)
from repro.chain.events import SimulationClock
from repro.chain.htlc import HTLC, HTLCState
from repro.chain.ledger import Ledger
from repro.chain.network import TwoChainNetwork
from repro.chain.oracle import CollateralEscrow, EscrowState, Oracle
from repro.chain.transaction import Transaction, TxStatus

__all__ = [
    "Blockchain",
    "Secret",
    "new_secret",
    "hashlock_of",
    "verify_preimage",
    "SimulationClock",
    "HTLC",
    "HTLCState",
    "Ledger",
    "TwoChainNetwork",
    "CollateralEscrow",
    "EscrowState",
    "Oracle",
    "Transaction",
    "TxStatus",
    "ChainError",
    "InsufficientFunds",
    "UnknownAccount",
    "ContractStateError",
]
