"""Secrets and hashlocks (paper Section II-B).

An HTLC locks funds under ``H = sha256(secret)``; revealing the
preimage in a claim transaction unlocks them. The secret generator
draws from the library's seeded RNG so episodes stay reproducible.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.stochastic.rng import RandomState

__all__ = ["Secret", "new_secret", "hashlock_of", "verify_preimage"]

SECRET_NUM_BYTES = 32


@dataclass(frozen=True)
class Secret:
    """A swap secret and its hashlock."""

    preimage: bytes

    def __post_init__(self) -> None:
        if len(self.preimage) != SECRET_NUM_BYTES:
            raise ValueError(
                f"secret must be {SECRET_NUM_BYTES} bytes, got {len(self.preimage)}"
            )

    @property
    def hashlock(self) -> bytes:
        """``sha256(preimage)``."""
        return hashlib.sha256(self.preimage).digest()

    def __repr__(self) -> str:  # pragma: no cover - avoid leaking the preimage
        return f"Secret(hashlock={self.hashlock.hex()[:16]}...)"


def new_secret(rng: RandomState) -> Secret:
    """Generate a fresh random secret."""
    return Secret(preimage=rng.token_bytes(SECRET_NUM_BYTES))


def hashlock_of(preimage: bytes) -> bytes:
    """The hashlock a given preimage opens."""
    return hashlib.sha256(preimage).digest()


def verify_preimage(preimage: bytes, hashlock: bytes) -> bool:
    """Whether ``preimage`` opens ``hashlock``."""
    return hashlib.sha256(preimage).digest() == hashlock
