"""Blocks: confirmed-transaction bookkeeping.

The simulator does not need proof-of-work detail, but grouping
confirmations into height-ordered blocks gives the chain an auditable
history and lets tests assert ordering/finality properties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.chain.transaction import Transaction

__all__ = ["Block"]


@dataclass
class Block:
    """A batch of transactions finalised at one confirmation instant."""

    height: int
    timestamp: float
    transactions: Tuple[Transaction, ...]

    def __post_init__(self) -> None:
        if self.height < 0:
            raise ValueError(f"block height must be non-negative, got {self.height}")
        if not self.transactions:
            raise ValueError("a block must contain at least one transaction")

    @property
    def txids(self) -> Tuple[int, ...]:
        """Transaction ids in the block."""
        return tuple(tx.txid for tx in self.transactions)
