"""Exception hierarchy of the chain substrate."""

from __future__ import annotations

__all__ = [
    "ChainError",
    "UnknownAccount",
    "InsufficientFunds",
    "ContractStateError",
    "ClockError",
]


class ChainError(Exception):
    """Base class for all substrate errors."""


class UnknownAccount(ChainError):
    """An operation referenced an account that does not exist."""


class InsufficientFunds(ChainError):
    """An account's balance cannot cover a transfer or lock."""


class ContractStateError(ChainError):
    """A contract method was invoked in an invalid state or with bad inputs."""


class ClockError(ChainError):
    """The simulation clock was asked to move backwards."""
