"""Exception hierarchy of the chain substrate."""

from __future__ import annotations

__all__ = [
    "ChainError",
    "UnknownAccount",
    "InsufficientFunds",
    "ContractStateError",
    "ClockError",
    "OracleUnavailableError",
]


class ChainError(Exception):
    """Base class for all substrate errors."""


class UnknownAccount(ChainError):
    """An operation referenced an account that does not exist."""


class InsufficientFunds(ChainError):
    """An account's balance cannot cover a transfer or lock."""


class ContractStateError(ChainError):
    """A contract method was invoked in an invalid state or with bad inputs."""


class ClockError(ChainError):
    """The simulation clock was asked to move backwards."""


class OracleUnavailableError(ChainError):
    """The cross-chain Oracle refused to settle (simulated outage).

    Raised only under fault injection (``oracle_outage``); the paper's
    Section IV Oracle is otherwise a perfect, always-available
    observer. The escrow state is untouched, so a retried settlement
    call succeeds once the outage ends.
    """
