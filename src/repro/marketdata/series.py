"""Price series and GBM parameter estimation.

:class:`PriceSeries` holds an hourly (or any fixed-step) price history;
:func:`estimate_gbm_parameters` recovers the ``(mu, sigma)`` a GBM
would need to produce the observed log-returns -- the standard
maximum-likelihood estimators

    sigma_hat^2 = Var[log-returns] / dt
    mu_hat      = Mean[log-returns] / dt + sigma_hat^2 / 2

which the backtester feeds into :class:`SwapParameters` windows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["PriceSeries", "GBMEstimate", "estimate_gbm_parameters"]


@dataclass(frozen=True)
class PriceSeries:
    """A fixed-step price history.

    Attributes
    ----------
    prices:
        Strictly positive prices.
    dt:
        Time step between observations, in hours.
    """

    prices: Tuple[float, ...]
    dt: float = 1.0

    def __post_init__(self) -> None:
        if len(self.prices) < 2:
            raise ValueError("a price series needs at least two observations")
        if any(p <= 0.0 for p in self.prices):
            raise ValueError("prices must be strictly positive")
        if not self.dt > 0.0:
            raise ValueError(f"dt must be positive, got {self.dt}")

    def __len__(self) -> int:
        return len(self.prices)

    @property
    def as_array(self) -> np.ndarray:
        """Prices as a numpy array."""
        return np.asarray(self.prices, dtype=float)

    def log_returns(self) -> np.ndarray:
        """Per-step log returns ``ln(P_{i+1} / P_i)``."""
        arr = self.as_array
        return np.diff(np.log(arr))

    def window(self, start: int, length: int) -> "PriceSeries":
        """A contiguous sub-series ``[start, start + length)``."""
        if start < 0 or length < 2 or start + length > len(self.prices):
            raise ValueError(
                f"invalid window [{start}, {start + length}) of a "
                f"{len(self.prices)}-point series"
            )
        return PriceSeries(prices=self.prices[start : start + length], dt=self.dt)

    def price_at(self, index: int) -> float:
        """Price at observation ``index``."""
        return self.prices[index]

    def realized_volatility(self) -> float:
        """Annualisation-free realized volatility (per sqrt hour)."""
        returns = self.log_returns()
        return float(returns.std(ddof=1) / math.sqrt(self.dt))


@dataclass(frozen=True)
class GBMEstimate:
    """Estimated GBM parameters with the sample size used."""

    mu: float
    sigma: float
    n_observations: int


def estimate_gbm_parameters(series: PriceSeries, min_sigma: float = 1e-4) -> GBMEstimate:
    """Maximum-likelihood ``(mu, sigma)`` from a price window.

    ``min_sigma`` floors the volatility estimate so downstream solvers
    (which require ``sigma > 0``) stay well-posed on degenerate windows.
    """
    returns = series.log_returns()
    dt = series.dt
    sigma2 = float(returns.var(ddof=1)) / dt
    sigma = max(math.sqrt(max(sigma2, 0.0)), min_sigma)
    mu = float(returns.mean()) / dt + 0.5 * sigma * sigma
    return GBMEstimate(mu=mu, sigma=sigma, n_observations=len(returns))
