"""Market-data simulation studies (paper future work, direction 1).

The conclusion proposes "simulation studies ... based on our model
framework and its derivation using real market data". Real exchange
feeds are not available offline, so this package substitutes *synthetic
market regimes* that reproduce the statistical features the model cares
about (see DESIGN.md, substitutions):

* :mod:`repro.marketdata.series` -- price-series container with
  log-returns, rolling realized volatility and drift estimation;
* :mod:`repro.marketdata.synthetic` -- seeded generators: plain GBM,
  regime-switching GBM (calm/turbulent), and Merton jump-diffusion;
* :mod:`repro.marketdata.calibrate` -- per-law estimators
  (lognormal closed form, Merton mixture MLE, regime Baum--Welch EM)
  returning a fitted :class:`~repro.stochastic.law.LawSpec`;
* :mod:`repro.marketdata.backtest` -- a walk-forward backtester: at
  each decision time it calibrates the chosen law from trailing data,
  picks the SR-maximising ``P*``, predicts the success rate, then
  plays the swap out against the *realized* future prices and compares
  prediction with outcome.
"""

from repro.marketdata.backtest import BacktestReport, SwapBacktester
from repro.marketdata.calibrate import LawCalibration, calibrate_law
from repro.marketdata.series import PriceSeries, estimate_gbm_parameters
from repro.marketdata.synthetic import (
    JumpDiffusionGenerator,
    PlainGBMGenerator,
    RegimeSwitchingGenerator,
)

__all__ = [
    "PriceSeries",
    "estimate_gbm_parameters",
    "LawCalibration",
    "calibrate_law",
    "PlainGBMGenerator",
    "RegimeSwitchingGenerator",
    "JumpDiffusionGenerator",
    "SwapBacktester",
    "BacktestReport",
]
