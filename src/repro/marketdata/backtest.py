"""Walk-forward backtesting of the swap model on a price series.

For each attempt time ``t`` along the series, the backtester

1. estimates ``(mu, sigma)`` from the trailing estimation window
   (information available at ``t`` only -- no look-ahead);
2. solves the swap game at ``P_t``: feasible ``P*`` window, the
   SR-maximising rate, and the *predicted* success rate;
3. plays the swap forward against the realized prices at
   ``t + tau_a`` and ``t + tau_a + tau_b`` using the equilibrium
   threshold strategies;
4. records prediction vs outcome.

The aggregate report compares predicted and realized success rates
(calibration) and the Brier score of the per-attempt predictions. On
GBM data the model is correctly specified and should be calibrated; on
regime-switching or jumpy data the gap measures model risk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.backward_induction import BackwardInduction
from repro.core.parameters import SwapParameters
from repro.core.success_rate import max_success_rate
from repro.marketdata.calibrate import calibrate_law
from repro.marketdata.series import PriceSeries

__all__ = ["AttemptRecord", "BacktestReport", "SwapBacktester"]


@dataclass(frozen=True)
class AttemptRecord:
    """One walk-forward swap attempt."""

    index: int
    spot: float
    mu_hat: float
    sigma_hat: float
    viable: bool
    pstar: Optional[float]
    predicted_sr: Optional[float]
    succeeded: Optional[bool]
    p2: Optional[float]
    p3: Optional[float]


@dataclass(frozen=True)
class BacktestReport:
    """Aggregate results of a backtest run."""

    attempts: Tuple[AttemptRecord, ...]

    @property
    def n_attempts(self) -> int:
        """Number of time points evaluated."""
        return len(self.attempts)

    @property
    def viable_attempts(self) -> Tuple[AttemptRecord, ...]:
        """Attempts where a feasible exchange rate existed."""
        return tuple(a for a in self.attempts if a.viable)

    @property
    def viability_rate(self) -> float:
        """Share of time points where the market admitted a swap."""
        if not self.attempts:
            return 0.0
        return len(self.viable_attempts) / len(self.attempts)

    @property
    def realized_success_rate(self) -> float:
        """Fraction of viable attempts that completed."""
        viable = self.viable_attempts
        if not viable:
            return 0.0
        return sum(1 for a in viable if a.succeeded) / len(viable)

    @property
    def mean_predicted_success_rate(self) -> float:
        """Average model-predicted SR across viable attempts."""
        viable = self.viable_attempts
        if not viable:
            return 0.0
        return sum(a.predicted_sr for a in viable) / len(viable)

    @property
    def brier_score(self) -> float:
        """Mean squared error of the per-attempt SR predictions."""
        viable = self.viable_attempts
        if not viable:
            return 0.0
        return sum(
            (a.predicted_sr - (1.0 if a.succeeded else 0.0)) ** 2 for a in viable
        ) / len(viable)

    @property
    def calibration_gap(self) -> float:
        """``|mean predicted - realized|`` success rate."""
        return abs(self.mean_predicted_success_rate - self.realized_success_rate)

    def describe(self) -> str:
        """One-paragraph report."""
        return (
            f"attempts: {self.n_attempts} "
            f"(viable: {len(self.viable_attempts)}, "
            f"viability {self.viability_rate:.1%})\n"
            f"predicted SR: {self.mean_predicted_success_rate:.4f}; "
            f"realized SR: {self.realized_success_rate:.4f}; "
            f"gap {self.calibration_gap:.4f}; "
            f"Brier {self.brier_score:.4f}"
        )


class SwapBacktester:
    """Walk-forward evaluation of the swap model on one price series.

    Parameters
    ----------
    base_params:
        Agent preferences and timing constants; ``(p0, mu, sigma)`` are
        replaced per attempt from the data.
    window:
        Trailing estimation window length in observations.
    step:
        Stride between attempts, in observations.
    rate_policy:
        ``"optimal"`` picks the SR-maximising ``P*`` per attempt;
        ``"spot"`` uses the current price as the rate when feasible.
    law_kind:
        Which price law to calibrate and solve under per attempt
        (``"lognormal"``, ``"merton"`` or ``"regime"``); each window is
        fitted by that law's own estimator
        (:func:`~repro.marketdata.calibrate.calibrate_law`).
    """

    def __init__(
        self,
        base_params: SwapParameters,
        window: int = 168,
        step: int = 24,
        rate_policy: str = "optimal",
        law_kind: str = "lognormal",
    ) -> None:
        if window < 8:
            raise ValueError(f"window must be >= 8 observations, got {window}")
        if step < 1:
            raise ValueError(f"step must be >= 1, got {step}")
        if rate_policy not in ("optimal", "spot"):
            raise ValueError(f"unknown rate_policy {rate_policy!r}")
        self.base_params = base_params
        self.window = window
        self.step = step
        self.rate_policy = rate_policy
        self.law_kind = law_kind

    def _offsets(self, dt: float) -> Tuple[int, int]:
        """Observation offsets of ``t2`` and ``t3`` from the attempt time."""
        off2 = max(int(round(self.base_params.tau_a / dt)), 1)
        off3 = off2 + max(int(round(self.base_params.tau_b / dt)), 1)
        return off2, off3

    def run(self, series: PriceSeries) -> BacktestReport:
        """Backtest the whole series."""
        off2, off3 = self._offsets(series.dt)
        last_start = len(series) - off3 - 1
        if last_start < self.window:
            raise ValueError(
                "series too short: need at least "
                f"{self.window + off3 + 1} observations, got {len(series)}"
            )
        attempts: List[AttemptRecord] = []
        for i in range(self.window, last_start + 1, self.step):
            attempts.append(self._attempt(series, i, off2, off3))
        return BacktestReport(attempts=tuple(attempts))

    def _attempt(
        self, series: PriceSeries, i: int, off2: int, off3: int
    ) -> AttemptRecord:
        estimate = calibrate_law(
            series.window(i - self.window, self.window), self.law_kind
        )
        spot = series.price_at(i)
        params = self.base_params.replace(
            p0=spot, mu=estimate.mu, sigma=estimate.sigma, law=estimate.law
        )

        pstar = self._choose_rate(params)
        if pstar is None:
            return AttemptRecord(
                index=i, spot=spot, mu_hat=estimate.mu, sigma_hat=estimate.sigma,
                viable=False, pstar=None, predicted_sr=None,
                succeeded=None, p2=None, p3=None,
            )

        solver = BackwardInduction(params, pstar)
        predicted = solver.success_rate()
        p2 = series.price_at(i + off2)
        p3 = series.price_at(i + off3)
        succeeded = (p2 in solver.bob_t2_region()) and (p3 > solver.p3_threshold())
        return AttemptRecord(
            index=i, spot=spot, mu_hat=estimate.mu, sigma_hat=estimate.sigma,
            viable=True, pstar=pstar, predicted_sr=predicted,
            succeeded=succeeded, p2=p2, p3=p3,
        )

    def _choose_rate(self, params: SwapParameters) -> Optional[float]:
        if self.rate_policy == "optimal":
            located = max_success_rate(params)
            return located[0] if located is not None else None
        # "spot": trade at the current price if that rate is individually
        # rational for Alice
        solver = BackwardInduction(params, params.p0)
        if solver.alice_initiates():
            return params.p0
        return None
