"""Synthetic market generators.

Offline substitutes for "real market data" (see DESIGN.md): three
generators producing hourly :class:`~repro.marketdata.series.PriceSeries`
with the stylised features that stress the swap model differently --

* :class:`PlainGBMGenerator` -- the model's own assumption; the
  backtester should be near-perfectly calibrated here;
* :class:`RegimeSwitchingGenerator` -- a two-state (calm/turbulent)
  Markov chain over volatilities; reproduces volatility clustering, the
  feature behind the Bisq "failures rise in volatile periods" anecdote;
* :class:`JumpDiffusionGenerator` -- Merton-style lognormal jumps on
  top of a GBM; stresses the model with tails it does not assume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.marketdata.series import PriceSeries
from repro.stochastic.rng import RandomState

__all__ = [
    "PlainGBMGenerator",
    "RegimeSwitchingGenerator",
    "JumpDiffusionGenerator",
]


@dataclass(frozen=True)
class PlainGBMGenerator:
    """Exact GBM sampling at a fixed step."""

    mu: float = 0.002
    sigma: float = 0.1
    dt: float = 1.0

    def generate(self, spot: float, n_steps: int, rng: RandomState) -> PriceSeries:
        """An ``n_steps + 1``-point series starting at ``spot``."""
        if not spot > 0.0:
            raise ValueError(f"spot must be positive, got {spot}")
        if n_steps < 1:
            raise ValueError(f"n_steps must be >= 1, got {n_steps}")
        z = rng.standard_normal(n_steps)
        increments = (self.mu - 0.5 * self.sigma**2) * self.dt + self.sigma * math.sqrt(
            self.dt
        ) * z
        log_prices = math.log(spot) + np.concatenate(([0.0], np.cumsum(increments)))
        return PriceSeries(prices=tuple(np.exp(log_prices)), dt=self.dt)


@dataclass(frozen=True)
class RegimeSwitchingGenerator:
    """Two-regime GBM: calm and turbulent volatility states.

    The regime follows a two-state Markov chain with the given per-step
    switching probabilities; drift is shared, volatility differs.
    """

    mu: float = 0.002
    sigma_calm: float = 0.05
    sigma_turbulent: float = 0.2
    p_calm_to_turbulent: float = 0.02
    p_turbulent_to_calm: float = 0.1
    dt: float = 1.0

    def __post_init__(self) -> None:
        for name in ("p_calm_to_turbulent", "p_turbulent_to_calm"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")

    def generate(
        self, spot: float, n_steps: int, rng: RandomState
    ) -> Tuple[PriceSeries, Tuple[int, ...]]:
        """Series plus the regime path (0 = calm, 1 = turbulent)."""
        if not spot > 0.0:
            raise ValueError(f"spot must be positive, got {spot}")
        if n_steps < 1:
            raise ValueError(f"n_steps must be >= 1, got {n_steps}")
        z = rng.standard_normal(n_steps)
        switches = rng.uniform(size=n_steps)
        regimes = np.zeros(n_steps, dtype=int)
        state = 0
        for i in range(n_steps):
            threshold = (
                self.p_calm_to_turbulent if state == 0 else self.p_turbulent_to_calm
            )
            if switches[i] < threshold:
                state = 1 - state
            regimes[i] = state
        sigmas = np.where(regimes == 0, self.sigma_calm, self.sigma_turbulent)
        increments = (self.mu - 0.5 * sigmas**2) * self.dt + sigmas * math.sqrt(
            self.dt
        ) * z
        log_prices = math.log(spot) + np.concatenate(([0.0], np.cumsum(increments)))
        series = PriceSeries(prices=tuple(np.exp(log_prices)), dt=self.dt)
        return series, tuple(int(r) for r in regimes)


@dataclass(frozen=True)
class JumpDiffusionGenerator:
    """Merton jump-diffusion: GBM plus Poisson lognormal jumps."""

    mu: float = 0.002
    sigma: float = 0.08
    jump_intensity: float = 0.02  # expected jumps per hour
    jump_mean: float = -0.05     # mean log-jump size
    jump_std: float = 0.1
    dt: float = 1.0

    def __post_init__(self) -> None:
        if self.jump_intensity < 0.0:
            raise ValueError("jump_intensity must be non-negative")
        if self.jump_std < 0.0:
            raise ValueError("jump_std must be non-negative")

    def generate(self, spot: float, n_steps: int, rng: RandomState) -> PriceSeries:
        """An ``n_steps + 1``-point series with jumps."""
        if not spot > 0.0:
            raise ValueError(f"spot must be positive, got {spot}")
        if n_steps < 1:
            raise ValueError(f"n_steps must be >= 1, got {n_steps}")
        z = rng.standard_normal(n_steps)
        n_jumps = rng.generator.poisson(self.jump_intensity * self.dt, size=n_steps)
        jump_z = rng.standard_normal(n_steps)
        jumps = n_jumps * self.jump_mean + np.sqrt(n_jumps) * self.jump_std * jump_z
        increments = (
            (self.mu - 0.5 * self.sigma**2) * self.dt
            + self.sigma * math.sqrt(self.dt) * z
            + jumps
        )
        log_prices = math.log(spot) + np.concatenate(([0.0], np.cumsum(increments)))
        return PriceSeries(prices=tuple(np.exp(log_prices)), dt=self.dt)
