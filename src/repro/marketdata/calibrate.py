"""Per-law parameter estimation from a price window.

:func:`calibrate_law` turns a :class:`~repro.marketdata.series.PriceSeries`
window into a :class:`LawCalibration`: a validated
:class:`~repro.stochastic.law.LawSpec` plus the ``(mu, sigma)`` pair the
solvers need, fitted by the estimator that matches the law:

* ``lognormal`` -- the closed-form Gaussian MLE of
  :func:`~repro.marketdata.series.estimate_gbm_parameters`;
* ``merton`` -- maximum likelihood under the Poisson-mixture return
  density (robust initialisation from a MAD volatility and a 3-sigma
  outlier scan, then Nelder--Mead on the exact mixture likelihood);
* ``regime`` -- Baum--Welch EM for a 2-state Gaussian HMM over
  log-returns (calm = the lower-volatility state).

Drift conventions match the transition kernels exactly. The Merton
generator draws increments with *diffusion* drift ``mu_d``; the swap
model's ``mu`` is the total expected growth rate, so the calibrator
reports ``mu = mu_d + lambda * kappa`` with
``kappa = e^{gamma + delta^2/2} - 1`` -- plugging the calibration into
:func:`repro.stochastic.jumpdiffusion.merton_step_kernel` reproduces the
generator's per-step return density identically. For the regime law the
reported ``mu`` is the stationary-weighted growth rate and ``sigma`` the
stationary volatility (the regime kernel carries its own volatilities,
but downstream consumers of ``SwapParameters.sigma`` stay sane).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.marketdata.series import PriceSeries, estimate_gbm_parameters
from repro.stochastic.law import LawSpec

__all__ = ["LawCalibration", "calibrate_law"]

_MIN_SIGMA = 1e-4
_MIN_PROB = 1e-6


@dataclass(frozen=True)
class LawCalibration:
    """A fitted law with the solver-facing drift/volatility pair."""

    law: LawSpec
    mu: float
    sigma: float
    n_observations: int
    log_likelihood: float

    @property
    def kind(self) -> str:
        return self.law.kind


def calibrate_law(series: PriceSeries, kind: str = "lognormal") -> LawCalibration:
    """Fit the named law to a price window by its own estimator."""
    if kind == "lognormal":
        return _calibrate_lognormal(series)
    if kind == "merton":
        return _calibrate_merton(series)
    if kind == "regime":
        return _calibrate_regime(series)
    raise ValueError(f"no calibrator for law kind {kind!r}")


# --------------------------------------------------------------------- #
# lognormal: closed form
# --------------------------------------------------------------------- #


def _gaussian_loglik(r: np.ndarray, mean: float, var: float) -> float:
    var = max(var, _MIN_SIGMA**2)
    return float(
        -0.5 * np.sum((r - mean) ** 2) / var
        - 0.5 * r.size * math.log(2.0 * math.pi * var)
    )


def _calibrate_lognormal(series: PriceSeries) -> LawCalibration:
    est = estimate_gbm_parameters(series, min_sigma=_MIN_SIGMA)
    r = series.log_returns()
    dt = series.dt
    ll = _gaussian_loglik(r, (est.mu - 0.5 * est.sigma**2) * dt, est.sigma**2 * dt)
    return LawCalibration(
        law=LawSpec.lognormal(),
        mu=est.mu,
        sigma=est.sigma,
        n_observations=est.n_observations,
        log_likelihood=ll,
    )


# --------------------------------------------------------------------- #
# merton: Poisson-mixture MLE
# --------------------------------------------------------------------- #


def _merton_components(rate: float, max_components: int = 32) -> int:
    """Poisson terms to keep for a per-step jump rate (tail < ~1e-12)."""
    n = int(math.ceil(rate + 10.0 * math.sqrt(rate + 1.0)))
    return int(np.clip(n, 3, max_components))


def _merton_loglik(r: np.ndarray, dt: float, theta: np.ndarray) -> float:
    """Exact mixture log-likelihood; ``theta = (mu_d, log s, log lam, g, log d)``."""
    mu_d = theta[0]
    sigma = math.exp(theta[1])
    lam = math.exp(theta[2])
    gamma = theta[3]
    delta = math.exp(theta[4])
    rate = lam * dt
    n_terms = _merton_components(rate)
    j = np.arange(n_terms + 1, dtype=float)
    log_w = -rate + j * math.log(max(rate, 1e-300)) - np.cumsum(
        np.concatenate(([0.0], np.log(np.arange(1, n_terms + 1, dtype=float))))
    )
    means = (mu_d - 0.5 * sigma * sigma) * dt + j * gamma
    variances = sigma * sigma * dt + j * delta * delta
    z2 = (r[:, None] - means[None, :]) ** 2 / variances[None, :]
    log_phi = -0.5 * z2 - 0.5 * np.log(2.0 * math.pi * variances)[None, :]
    terms = log_w[None, :] + log_phi
    m = terms.max(axis=1)
    return float(np.sum(m + np.log(np.sum(np.exp(terms - m[:, None]), axis=1))))


def _calibrate_merton(series: PriceSeries) -> LawCalibration:
    from scipy.optimize import minimize

    r = series.log_returns()
    dt = series.dt
    n = r.size

    # robust initialisation: MAD volatility + 3-sigma outlier scan
    med = float(np.median(r))
    mad = float(np.median(np.abs(r - med)))
    sigma0 = max(1.4826 * mad / math.sqrt(dt), _MIN_SIGMA)
    scale = sigma0 * math.sqrt(dt)
    outliers = np.abs(r - med) > 3.0 * scale
    n_out = int(np.count_nonzero(outliers))
    lam0 = max(n_out / (n * dt), 0.25 / (n * dt))
    gamma0 = float(np.mean(r[outliers] - med)) if n_out else -0.01
    delta0 = max(float(np.std(r[outliers])) if n_out > 1 else scale, 1e-3)
    mu_d0 = med / dt + 0.5 * sigma0 * sigma0

    x0 = np.array(
        [mu_d0, math.log(sigma0), math.log(lam0), gamma0, math.log(delta0)]
    )
    result = minimize(
        lambda th: -_merton_loglik(r, dt, th),
        x0,
        method="Nelder-Mead",
        options={"maxiter": 2000, "xatol": 1e-6, "fatol": 1e-8},
    )
    best = result.x if result.fun <= -_merton_loglik(r, dt, x0) else x0

    mu_d = float(best[0])
    sigma = max(float(math.exp(best[1])), _MIN_SIGMA)
    lam = float(math.exp(best[2]))
    gamma = float(best[3])
    delta = float(math.exp(best[4]))
    kappa = math.exp(gamma + 0.5 * delta * delta) - 1.0
    return LawCalibration(
        law=LawSpec.make(
            "merton", jump_intensity=lam, jump_mean=gamma, jump_std=delta
        ),
        mu=mu_d + lam * kappa,
        sigma=sigma,
        n_observations=n,
        log_likelihood=_merton_loglik(r, dt, np.asarray(best)),
    )


# --------------------------------------------------------------------- #
# regime: 2-state Gaussian HMM via Baum--Welch
# --------------------------------------------------------------------- #


def _calibrate_regime(series: PriceSeries, n_iter: int = 50) -> LawCalibration:
    r = series.log_returns()
    dt = series.dt
    n = r.size

    # initialise by a median split on absolute deviations: the quiet half
    # seeds the calm state, the loud half the turbulent one
    dev = np.abs(r - np.median(r))
    loud = dev > np.median(dev)
    means = np.array([float(np.mean(r[~loud])), float(np.mean(r[loud]))])
    variances = np.array(
        [
            max(float(np.var(r[~loud])), _MIN_SIGMA**2 * dt),
            max(float(np.var(r[loud])), _MIN_SIGMA**2 * dt),
        ]
    )
    trans = np.array([[0.95, 0.05], [0.1, 0.9]])
    pi = np.array([0.5, 0.5])
    ll = -np.inf

    for _ in range(n_iter):
        # E-step: scaled forward-backward
        log_b = -0.5 * (r[:, None] - means[None, :]) ** 2 / variances[
            None, :
        ] - 0.5 * np.log(2.0 * math.pi * variances)[None, :]
        b = np.exp(log_b - log_b.max(axis=1, keepdims=True))
        alpha = np.empty((n, 2))
        scale = np.empty(n)
        alpha[0] = pi * b[0]
        scale[0] = alpha[0].sum()
        alpha[0] /= scale[0]
        for t in range(1, n):
            alpha[t] = (alpha[t - 1] @ trans) * b[t]
            scale[t] = alpha[t].sum()
            alpha[t] /= scale[t]
        beta = np.empty((n, 2))
        beta[-1] = 1.0
        for t in range(n - 2, -1, -1):
            beta[t] = (trans @ (b[t + 1] * beta[t + 1])) / scale[t + 1]
        gamma_post = alpha * beta
        gamma_post /= gamma_post.sum(axis=1, keepdims=True)
        xi = (
            alpha[:-1, :, None]
            * trans[None, :, :]
            * (b[1:, None, :] * beta[1:, None, :])
            / scale[1:, None, None]
        )

        new_ll = float(np.sum(np.log(scale)) + np.sum(log_b.max(axis=1)))
        # M-step
        pi = gamma_post[0]
        denom = gamma_post[:-1].sum(axis=0)[:, None]
        trans = xi.sum(axis=0) / np.maximum(denom, _MIN_PROB)
        trans = np.clip(trans, _MIN_PROB, 1.0 - _MIN_PROB)
        trans /= trans.sum(axis=1, keepdims=True)
        weight = gamma_post.sum(axis=0)
        means = (gamma_post * r[:, None]).sum(axis=0) / np.maximum(weight, _MIN_PROB)
        variances = (gamma_post * (r[:, None] - means[None, :]) ** 2).sum(
            axis=0
        ) / np.maximum(weight, _MIN_PROB)
        variances = np.maximum(variances, _MIN_SIGMA**2 * dt)
        if abs(new_ll - ll) < 1e-10 * max(1.0, abs(new_ll)):
            ll = new_ll
            break
        ll = new_ll

    # order states so index 0 is calm (lower volatility)
    order = np.argsort(variances)
    means, variances = means[order], variances[order]
    trans = trans[np.ix_(order, order)]

    sigma_c = max(math.sqrt(variances[0] / dt), _MIN_SIGMA)
    sigma_t = max(math.sqrt(variances[1] / dt), sigma_c * (1.0 + 1e-9))
    # per-step switch probabilities -> per-unit-time (the law's convention)
    p_ct = float(np.clip(trans[0, 1] / dt, 0.0, 1.0))
    p_tc = float(np.clip(trans[1, 0] / dt, 0.0, 1.0))
    total = p_ct + p_tc
    pi_t = p_ct / total if total > 0.0 else 0.5
    mu_states = means / dt + 0.5 * np.array([sigma_c**2, sigma_t**2])
    mu = float((1.0 - pi_t) * mu_states[0] + pi_t * mu_states[1])
    sigma = math.sqrt((1.0 - pi_t) * sigma_c**2 + pi_t * sigma_t**2)
    return LawCalibration(
        law=LawSpec.make(
            "regime",
            sigma_calm=sigma_c,
            sigma_turbulent=sigma_t,
            p_calm_to_turbulent=p_ct,
            p_turbulent_to_calm=p_tc,
        ),
        mu=mu,
        sigma=sigma,
        n_observations=n,
        log_likelihood=float(ll),
    )
