"""Benchmark S3: the vectorised grid-solve engine.

Not a paper artifact -- this measures the refactored solver core: a
256-point Figure 6 success-rate curve evaluated as one
:func:`repro.core.engine.solve_grid` array pass must (a) agree with the
seed's per-point scalar loop to 1e-9 everywhere and (b) run at least
5x faster than it. The run also checks the engine's observability
contract: one grid solve emits the ``repro_grid_*`` metric family.

Under ``REPRO_BENCH_SMOKE=1`` (the CI smoke lane) the timing assertion
is skipped -- shared runners make wall-clock ratios flaky -- but the
correctness and metrics assertions always hold.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import emit
from repro.core.backward_induction import BackwardInduction
from repro.core.engine import solve_grid
from repro.obs.metrics import get_registry

CURVE_POINTS = 256
SPEEDUP_FLOOR = 5.0


def _figure6_grid(params):
    lo, hi = 1.2, 3.2
    return [
        lo + (hi - lo) * i / (CURVE_POINTS - 1.0) for i in range(CURVE_POINTS)
    ]


def test_grid_curve_speedup_and_parity(params):
    pstars = _figure6_grid(params)

    t0 = time.perf_counter()
    scalar = [BackwardInduction(params, k).success_rate() for k in pstars]
    scalar_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    grid = solve_grid(params, pstars)
    grid_s = time.perf_counter() - t0

    worst = max(abs(g - s) for g, s in zip(grid.success_rate, scalar))
    assert worst <= 1e-9, f"grid/scalar divergence {worst:.3e}"

    speedup = scalar_s / grid_s if grid_s > 0 else float("inf")
    emit(
        "grid engine, 256-point Figure 6 curve",
        f"scalar loop : {scalar_s:.3f}s\n"
        f"grid solve  : {grid_s:.3f}s\n"
        f"speedup     : {speedup:.1f}x (floor {SPEEDUP_FLOOR}x)\n"
        f"max |dSR|   : {worst:.2e}",
    )
    if os.environ.get("REPRO_BENCH_SMOKE") != "1":
        assert speedup >= SPEEDUP_FLOOR, (
            f"grid engine only {speedup:.1f}x faster than the scalar loop"
        )


def test_grid_solve_emits_metrics(params):
    registry = get_registry()
    before = registry.snapshot()
    solved = solve_grid(params, [1.8, 2.0, 2.2])
    assert len(solved) == 3
    after = registry.snapshot()

    for family in ("repro_grid_solves_total", "repro_grid_points", "repro_grid_seconds"):
        assert family in after, family

    def total(snapshot):
        entry = snapshot.get("repro_grid_solves_total", {"samples": []})
        return sum(sample["value"] for sample in entry["samples"])

    assert total(after) == total(before) + 1
