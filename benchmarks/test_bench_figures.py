"""Benchmarks for Figures 3-6 and Eq. (29) of the basic model.

Each benchmark regenerates the figure's data series, prints it, and
asserts the qualitative shape the paper reports.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.analysis.figures import (
    figure3_alice_t3,
    figure4_bob_t2,
    figure5_alice_t1,
    figure6_success_rate,
)
from repro.core.feasible_range import feasible_pstar_range
from repro.core.success_rate import max_success_rate


def test_figure3_alice_t3_utility(benchmark, params):
    fig = benchmark(figure3_alice_t3, params)
    emit("Figure 3", fig.render())
    # shape: cont is increasing/linear, stop flat; threshold grows with P*
    thresholds = [thr for *_rest, thr in fig.curves]
    assert thresholds == sorted(thresholds)
    for _pstar, cont, stop, thr in fig.curves:
        below = [c for x, c in zip(fig.p3_grid, cont) if x < thr]
        above = [c for x, c in zip(fig.p3_grid, cont) if x > thr]
        assert all(c < stop + 1e-9 for c in below)
        assert all(c > stop - 1e-9 for c in above)


def test_figure4_bob_t2_utility(benchmark, params):
    fig = benchmark(figure4_bob_t2, params)
    emit("Figure 4", fig.render())
    ranges = [rng for _p, _c, rng in fig.curves]
    assert all(rng is not None for rng in ranges)
    # "this range expands and shifts to the higher end with larger P*"
    widths = [hi - lo for lo, hi in ranges]
    lows = [lo for lo, _hi in ranges]
    assert widths == sorted(widths)
    assert lows == sorted(lows)


def test_figure5_alice_t1_utility(benchmark, params):
    fig = benchmark(figure5_alice_t1, params)
    emit("Figure 5", fig.render())
    lo, hi = fig.feasible_range
    # cont > stop exactly inside the feasible window
    inside = [
        cont > stop
        for k, cont, stop in zip(fig.pstar_grid, fig.cont_values, fig.stop_values)
        if lo * 1.02 < k < hi * 0.98
    ]
    assert inside and all(inside)


def test_eq29_feasible_range(benchmark, params):
    bounds = benchmark(feasible_pstar_range, params)
    emit("Eq. (29)", f"P* feasible in ({bounds[0]:.4f}, {bounds[1]:.4f}); paper: (1.5, 2.5)")
    assert bounds[0] == pytest.approx(1.5, abs=0.05)
    assert bounds[1] == pytest.approx(2.5, abs=0.05)


class TestFigure6:
    """SR(P*) panels: concavity plus all Section III-F comparative statics."""

    @pytest.fixture(scope="class")
    def fig(self, params):
        return figure6_success_rate(params, n_points=13)

    def test_figure6_generation(self, benchmark, params):
        fig = benchmark.pedantic(
            figure6_success_rate,
            args=(params,),
            kwargs={"n_points": 9},
            rounds=1,
            iterations=1,
        )
        emit("Figure 6", fig.render())

    def test_figure6_shape(self, fig):
        """Unimodal on the window; concave on its central portion.

        The paper states the curve "is always concave"; at fine
        resolution we find the claim holds in the bulk but the left
        tail of *wide* feasible windows (high alpha) is locally convex
        (an S-shaped rise from SR ~ 0 at P̲*). The substantive shape
        claims -- a single interior maximum, concavity where the mass
        of the curve lives -- hold everywhere (see EXPERIMENTS.md).
        """
        for panel in fig.panels:
            for curve in panel.curves:
                if not curve.viable:
                    continue
                rates = np.asarray(curve.rates)
                peak = int(np.argmax(rates))
                assert np.all(np.diff(rates[: peak + 1]) > -1e-9)
                assert np.all(np.diff(rates[peak:]) < 1e-9)
                n = len(rates)
                central = rates[n // 5 : n - n // 5]
                second_diff = np.diff(central, 2)
                assert np.all(second_diff < 1e-6), (panel.parameter, curve.value)

    @pytest.mark.parametrize("parameter", ["alpha_a", "alpha_b"])
    def test_figure6_alpha_raises_sr(self, fig, parameter):
        panel = fig.panel(parameter)
        viable = [c for c in panel.curves if c.viable]
        maxima = [c.max_rate for c in viable]
        assert maxima == sorted(maxima)

    def test_figure6_impatience_lowers_sr(self, fig, params):
        """The paper's statement concerns the agents' impatience jointly.

        Per-agent, the directions differ: Bob's ``r_b`` alone lowers max
        SR, but *raising Alice's* ``r_a`` alone can raise it -- her
        refund (t8) lies further in the future than the swap proceeds
        (t5), so impatience favours completing (the Eq. 18 exponent
        ``tau_b - (eps_b + 2 tau_a)`` is negative under Table III).
        Either rate too high still kills the window.
        """
        from repro.core.success_rate import max_success_rate

        # joint sweep: monotone decreasing (the paper's claim)
        joint = [
            max_success_rate(params.replace(r_a=r, r_b=r))[1]
            for r in (0.005, 0.01, 0.015)
        ]
        assert joint == sorted(joint, reverse=True)
        # per-agent panels from the figure
        r_b_maxima = [
            c.max_rate for c in fig.panel("r_b").curves if c.viable
        ]
        assert r_b_maxima == sorted(r_b_maxima, reverse=True)
        r_a_viability = [c.viable for c in fig.panel("r_a").curves]
        assert r_a_viability == [True, True, False]  # too-high r_a kills it

    @pytest.mark.parametrize("parameter", ["tau_a", "tau_b"])
    def test_figure6_slow_chains_lower_sr(self, fig, parameter):
        panel = fig.panel(parameter)
        viable = [c for c in panel.curves if c.viable]
        maxima = [c.max_rate for c in viable]
        assert maxima == sorted(maxima, reverse=True)

    def test_figure6_trend_raises_sr(self, fig):
        panel = fig.panel("mu")
        viable = [c for c in panel.curves if c.viable]
        maxima = [c.max_rate for c in viable]
        assert maxima == sorted(maxima)

    def test_figure6_volatility_lowers_max_sr(self, fig):
        panel = fig.panel("sigma")
        viable = [c for c in panel.curves if c.viable]
        maxima = [c.max_rate for c in viable]
        assert maxima == sorted(maxima, reverse=True)
        # sigma = 0.2 is non-viable under defaults (paper: swap never initiated)
        assert not panel.curve_for(0.2).viable

    def test_figure6_interior_maximum(self, params):
        bounds = feasible_pstar_range(params)
        k_opt, rate = max_success_rate(params)
        assert bounds[0] < k_opt < bounds[1]
        emit(
            "Figure 6 (baseline max)",
            f"SR maximised at P* = {k_opt:.4f}, SR = {rate:.4f}",
        )
