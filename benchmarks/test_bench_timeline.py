"""Benchmark for Figure 2: the swap timeline.

Regenerates the idealized Eq. (13) schedule and verifies the full
Eq. (12) constraint chain (Figure 2a's partial order).
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.figures import figure2_timeline
from repro.core.timeline import idealized_timeline


def test_figure2_timeline(benchmark, params):
    fig = benchmark(figure2_timeline, params)
    emit("Figure 2(b)", fig.render())
    times = dict(fig.events)
    # Eq. (13) under Table III: t2=3, t3=7, t4=8, t5=t6=11, t7=15, t8=14
    assert times["t2 (Bob locks)"] == 3.0
    assert times["t3 (Alice reveals)"] == 7.0
    assert times["t4 (Bob redeems)"] == 8.0
    assert times["t5 = t_b (Alice receives)"] == 11.0
    assert times["t6 = t_a (Bob receives)"] == 11.0
    assert times["t7 (Bob refunded on fail)"] == 15.0
    assert times["t8 (Alice refunded on fail)"] == 14.0


def test_figure2a_constraints(benchmark, params):
    timeline = benchmark(idealized_timeline, params)
    report = timeline.constraint_report()
    assert all(ok for _name, ok in report)
    assert timeline.is_idealized
