"""Benchmarks for the Section IV collateral figures (7, 8, 9)."""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.analysis.figures import (
    figure7_bob_t2_collateral,
    figure8_t1_collateral,
    figure9_sr_collateral,
)
from repro.core.collateral import CollateralBackwardInduction


def test_figure7_bob_t2_collateral(benchmark, params):
    fig = benchmark(figure7_bob_t2_collateral, params)
    emit("Figure 7", fig.render())
    for _pstar, _q, _cont, region in fig.curves:
        # collateralised Bob continues at near-zero prices (intuition 2)
        assert region.bounds()[0] < 0.05
        # and still defects when Token_b is expensive enough
        assert region.bounds()[1] < 50.0


def test_figure7_indifference_point_count(benchmark, params):
    """Section IV: the indifference equation has an odd number of roots."""

    def count_roots():
        counts = {}
        for pstar, q in ((2.0, 0.1), (2.0, 0.5), (2.5, 0.2), (3.0, 0.05)):
            solver = CollateralBackwardInduction(params, pstar, q)
            region = solver.bob_t2_region()
            # pieces touching the lower scan edge contribute 1 boundary each;
            # finite roots = 2 * pieces - 1 (region always starts at ~0)
            counts[(pstar, q)] = 2 * len(region) - 1
        return counts

    counts = benchmark(count_roots)
    emit("Figure 7 roots", str(counts))
    assert all(n in (1, 3) for n in counts.values())


def test_figure8_t1_collateral(benchmark, params):
    fig = benchmark.pedantic(
        figure8_t1_collateral, args=(params,), rounds=1, iterations=1
    )
    emit("Figure 8", fig.render())
    assert not fig.alice_region.is_empty
    assert not fig.bob_region.is_empty
    joint = fig.alice_region.intersect(fig.bob_region)
    assert not joint.is_empty
    # the reference rate is mutually acceptable
    assert 2.0 in joint


def test_figure9_sr_collateral(benchmark, params):
    fig = benchmark.pedantic(
        figure9_sr_collateral, args=(params,), rounds=1, iterations=1
    )
    emit("Figure 9", fig.render())
    emit("Figure 9 maxima", str(fig.max_rates()))
    # headline claim: SR increases with Q, pointwise and at the max
    arrays = [np.asarray(rates) for _q, rates in fig.curves]
    for lower, higher in zip(arrays, arrays[1:]):
        assert np.all(higher >= lower - 1e-9)
    maxima = [rate for _q, rate in fig.max_rates()]
    assert maxima == sorted(maxima)


def test_figure9_q0_reduces_to_figure6(benchmark, params):
    """The Q=0 curve of Figure 9 is the baseline Figure 6 curve."""
    from repro.core.backward_induction import BackwardInduction

    def compare():
        diffs = []
        for k in (1.7, 2.0, 2.3):
            basic = BackwardInduction(params, k).success_rate()
            collateralised = CollateralBackwardInduction(params, k, 0.0).success_rate()
            diffs.append(abs(basic - collateralised))
        return diffs

    diffs = benchmark(compare)
    assert max(diffs) < 1e-9
