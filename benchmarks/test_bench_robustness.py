"""Benchmarks X8-X9: optionality decomposition and timing robustness.

* X8 -- the "free American option" quantified (Han et al. discussion):
  both agents' option values, their costs to the counterparty, and how
  the owner of the valuable option flips with ``P*``;
* X9 -- atomicity under confirmation jitter (Zakhary et al.
  discussion): expiry margins + schedule slack restore safety.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.core.optionality import optionality_report
from repro.core.splitting import plan_full_exit
from repro.simulation.robustness import timing_robustness_sweep


def test_x8_option_values(benchmark, params):
    def sweep():
        return [optionality_report(params, k) for k in (1.7, 2.0, 2.3)]

    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [r.pstar, r.alice_option_value, r.bob_option_value,
         r.sr_equilibrium, r.sr_committed_alice, r.sr_committed_bob]
        for r in reports
    ]
    emit(
        "X8 optionality",
        format_table(
            ["P*", "Alice option", "Bob option", "SR eq",
             "SR A-committed", "SR B-committed"],
            rows,
        ),
    )
    low, mid, high = reports
    # the paper's point: BOTH agents hold optionality, not just the initiator
    assert mid.alice_option_value > 0.0
    assert mid.bob_option_value > 0.0
    # ... and the valuable option flips with the agreed rate
    assert high.alice_option_value > low.alice_option_value
    assert low.bob_option_value > high.bob_option_value
    # removing either option raises SR
    for report in reports:
        assert report.sr_committed_alice >= report.sr_equilibrium
        assert report.sr_committed_bob >= report.sr_equilibrium


def test_x8_exit_planner(benchmark, params):
    def sweep():
        return [
            plan_full_exit(params, 2.0, wealth=10.0, collateral_ratio=c)
            for c in (0.0, 0.25, 0.5, 1.0)
        ]

    plans = benchmark(sweep)
    rows = [
        [p.collateral_ratio, p.n_rounds, p.total_time,
         p.all_rounds_succeed_probability]
        for p in plans
    ]
    emit(
        "X8 splitting cost (Zamyatin objection)",
        format_table(["collateral ratio", "rounds", "hours", "P(all ok)"], rows),
    )
    times = [p.total_time for p in plans]
    joints = [p.all_rounds_succeed_probability for p in plans]
    assert times == sorted(times)
    assert joints == sorted(joints)


def test_x9_timing_robustness(benchmark, params):
    points = benchmark.pedantic(
        timing_robustness_sweep,
        args=(params,),
        kwargs={
            "jitters": (0.0, 0.25),
            "margins": (0.0, 2.0),
            "wait_slacks": (0.0, 1.0),
            "n_runs": 120,
            "seed": 99,
        },
        rounds=1,
        iterations=1,
    )
    rows = [
        [p.jitter, p.margin, p.wait_slack,
         f"{p.completion_rate:.1%}", f"{p.violation_rate:.2%}"]
        for p in points
    ]
    emit(
        "X9 timing robustness",
        format_table(
            ["jitter", "margin", "wait", "completed", "violations"], rows
        ),
    )

    def cell(jitter, margin, wait):
        for p in points:
            if (p.jitter, p.margin, p.wait_slack) == (jitter, margin, wait):
                return p
        raise KeyError

    assert cell(0.0, 0.0, 0.0).completion_rate == 1.0
    assert cell(0.25, 0.0, 0.0).violation_rate > 0.0
    protected = cell(0.25, 2.0, 1.0)
    assert protected.completion_rate == 1.0
    assert protected.violation_rate == 0.0
