"""Benchmark X3: premium mechanism (Han et al.) vs symmetric collateral.

The related-work baseline: an initiator-only premium disciplines
Alice's t3 optionality but leaves Bob's t2 walk-away intact, so at
equal stake the Section IV symmetric collateral achieves a strictly
higher success rate.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.core.collateral import collateral_success_rate
from repro.core.premium import PremiumBackwardInduction


def test_premium_vs_collateral(benchmark, params):
    def compare():
        rows = []
        for stake in (0.0, 0.2, 0.5, 1.0):
            sr_premium = PremiumBackwardInduction(params, 2.0, stake).success_rate()
            sr_collateral = collateral_success_rate(params, 2.0, stake)
            rows.append([stake, sr_premium, sr_collateral])
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    emit(
        "X3 premium-vs-collateral",
        format_table(["stake", "SR premium", "SR collateral"], rows),
    )
    # equal at zero stake, collateral strictly dominates otherwise
    assert rows[0][1] == pytest.approx(rows[0][2], abs=1e-9)
    for stake, sr_premium, sr_collateral in rows[1:]:
        assert sr_collateral > sr_premium, stake
    # both monotone in the stake
    premiums = [row[1] for row in rows]
    collaterals = [row[2] for row in rows]
    assert premiums == sorted(premiums)
    assert collaterals == sorted(collaterals)


def test_premium_solver_cost(benchmark, params):
    def solve():
        return PremiumBackwardInduction(params, 2.0, 0.5).success_rate()

    sr = benchmark(solve)
    assert 0.7 < sr < 1.0
