"""Benchmark S7: the self-healing control plane under closed-loop load.

Not a paper artifact -- this prices the robustness story end to end.
A closed-loop harness (keep-alive workers, next request the instant
the previous answers) drives warm solves through the sharded tier
while the run injects the two control-plane events that matter in
production, in sequence:

1. ``kill -9`` one replica subprocess mid-run -- the probe must eject
   it, the supervisor must respawn it (fresh pid, replayed announce
   handshake) and readmit it to the ring once ``/readyz`` passes;
2. ``admin add`` a brand-new replica mid-run -- the ring grows under
   traffic, and consistent hashing means keys move *only to the
   newcomer* (the survivors' caches stay hot).

The acceptance gates encode the PR contract: **zero failed requests**
across both events (the closed loop hard-fails on any non-200), the
supervisor restores the killed replica within its budget, the reshard
is keyslice-stable, and the p99 over the whole disrupted run stays
bounded. Under ``REPRO_BENCH_SMOKE=1`` the timing floors relax; the
zero-failure and topology assertions remain.
"""

from __future__ import annotations

import os
import signal
import statistics
import threading
import time

from benchmarks.conftest import emit
from benchmarks.test_bench_sharded import (
    BODIES,
    _fmt,
    _NoDelayConnection,
    _warm,
)
from repro.server import RouterServer, ServerConfig
from repro.server.client import SwapClient

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
CONCURRENCY = 4
RESTORE_BUDGET = 15.0 if SMOKE else 5.0
STABLE_KEYS = [f"bench-{i}" for i in range(400)]


def test_selfheal_closed_loop_survives_kill9_and_live_reshard():
    import json

    config = dict(
        workers=2,
        queue_depth=64,
        probe_interval=0.1,
        probe_failures=2,
        restart_backoff=0.1,
        restart_backoff_cap=0.5,
        admin_token="bench",
    )
    router = RouterServer(ServerConfig(port=0, replicas=2, **config))
    stop = threading.Event()
    latencies: list = []
    failures: list = []
    lock = threading.Lock()

    def worker(offset: int) -> None:
        connection = _NoDelayConnection("127.0.0.1", router.port, timeout=60)
        mine = []
        i = 0
        try:
            while not stop.is_set():
                body = BODIES[(offset + i) % len(BODIES)]
                i += 1
                t0 = time.perf_counter()
                connection.request(
                    "POST",
                    "/v1/solve",
                    body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                payload = response.read()
                if response.status != 200 or not json.loads(payload)["ok"]:
                    failures.append((response.status, payload[:200]))
                    return
                mine.append(time.perf_counter() - t0)
        finally:
            connection.close()
            with lock:
                latencies.extend(mine)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(CONCURRENCY)
    ]
    try:
        router.start()
        _warm(router.port)
        for thread in threads:
            thread.start()
        time.sleep(0.3)  # the closed loop is established

        # -- event 1: kill -9 a replica; the tier must self-heal ------- #
        victim = router._replica_set.process("replica-0")
        old_pid = victim.pid
        killed_at = time.monotonic()
        os.kill(old_pid, signal.SIGKILL)
        restored = None
        while time.monotonic() - killed_at < RESTORE_BUDGET:
            fresh = router._replica_set.process("replica-0")
            if (
                fresh.alive
                and fresh.pid != old_pid
                and "replica-0" in router.ring.nodes
            ):
                restored = time.monotonic() - killed_at
                break
            time.sleep(0.05)
        assert restored is not None, (
            f"replica-0 not restored within {RESTORE_BUDGET:g}s"
        )

        # -- event 2: grow the fleet live via the admin surface -------- #
        admin = SwapClient(
            f"http://127.0.0.1:{router.port}",
            timeout=60.0,
            admin_token="bench",
        )
        before = {key: router.ring.node_for(key) for key in STABLE_KEYS}
        reply = admin.admin_add()  # a freshly spawned, supervised replica
        assert reply["ok"] is True
        newcomer = reply["name"]
        after = {key: router.ring.node_for(key) for key in STABLE_KEYS}
        moved = 0
        for key in STABLE_KEYS:
            if after[key] != before[key]:
                # keyslice stability: keys only ever move TO the newcomer
                assert after[key] == newcomer, (key, before[key], after[key])
                moved += 1
        assert 0 < moved < len(STABLE_KEYS) / 2  # a sliver, not a reshuffle

        time.sleep(0.5)  # traffic flows on the three-way topology
        stop.set()
        for thread in threads:
            thread.join(timeout=60.0)

        # -- the contract ---------------------------------------------- #
        assert not failures, f"self-heal run saw failures: {failures[:3]}"
        topology = admin.admin_topology()
        assert len(topology["ring"]) == 3
        assert topology["epoch"] >= 3  # eject + readmit + admin add
        metrics_text = admin.metrics()
        restarts = [
            line
            for line in metrics_text.splitlines()
            if line.startswith("repro_supervisor_restarts_total")
            and 'replica="replica-0"' in line
        ]
        assert restarts and float(restarts[0].rsplit(" ", 1)[1]) == 1.0

        ordered = sorted(latencies)
        p50 = statistics.median(ordered)
        p99 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]
        wall = time.monotonic() - killed_at
        emit(
            "S7 self-heal (kill -9 + live reshard, closed loop)",
            "\n".join(
                [
                    _fmt(
                        f"disrupted run c={CONCURRENCY}",
                        len(ordered) / wall,
                        p50,
                        p99,
                    ),
                    f"requests answered: {len(ordered)}  failed: 0",
                    f"supervisor restore: {restored:.2f}s "
                    f"(budget {RESTORE_BUDGET:g}s)",
                    f"reshard moved {moved}/{len(STABLE_KEYS)} keys "
                    f"-> {newcomer} only",
                    f"final topology: ring={sorted(topology['ring'])} "
                    f"epoch={topology['epoch']}",
                ]
            ),
        )
        if not SMOKE:
            assert restored <= 5.0
            assert p99 < 0.5  # bounded through kill, respawn and reshard
    finally:
        stop.set()
        router.shutdown(drain=False)
