"""Shared benchmark fixtures and reporting helpers.

Every benchmark regenerates one paper artifact (table or figure),
asserts the *shape* the paper reports (who wins, orderings,
concavity, crossovers) and prints the measured series so the run's
output is a full experimental record (see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.core.parameters import SwapParameters


@pytest.fixture(scope="session")
def params() -> SwapParameters:
    """The paper's Table III defaults."""
    return SwapParameters.default()


def emit(title: str, text: str) -> None:
    """Print an artifact block (visible with ``pytest -s`` and in logs)."""
    print(f"\n[{title}]")
    print(text)
