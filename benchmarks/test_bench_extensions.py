"""Benchmarks X4-X7: the model extensions.

* X4 -- incomplete information (Bayesian beliefs over alpha): the
  information value of Assumption 7;
* X5 -- carry / staking yields (Garman--Kohlhagen future work): yield
  asymmetry moves the success rate in opposite directions per leg;
* X6 -- transaction fees (relaxing Assumption 2): a commitment tax that
  always lowers SR, contrasted with collateral at equal size;
* X7 -- market-level studies: heterogeneous populations reproduce the
  Bisq volatility anecdote, and walk-forward backtests are calibrated
  on GBM data.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.core.backward_induction import BackwardInduction
from repro.core.bayesian import BayesianSwapGame, TypeDistribution
from repro.core.carry import CarryBackwardInduction
from repro.core.collateral import collateral_success_rate
from repro.core.fees import FeeBackwardInduction
from repro.marketdata import PlainGBMGenerator, SwapBacktester
from repro.simulation.population import PopulationSpec, volatility_failure_curve
from repro.stochastic.rng import RandomState


def test_x4_information_value(benchmark, params):
    def sweep():
        complete = BackwardInduction(params, 2.0).success_rate()
        rows = []
        for spread in (0.0, 0.1, 0.2, 0.3):
            if spread == 0.0:
                belief = TypeDistribution.point(0.3)
            else:
                belief = TypeDistribution.uniform([0.3 - spread, 0.3, 0.3 + spread])
            game = BayesianSwapGame(params, 2.0, belief, belief)
            rows.append(
                [spread, game.realised_success_rate(), game.ex_ante_success_rate()]
            )
        return complete, rows

    complete, rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "X4 information value",
        format_table(["belief spread", "realised SR", "ex-ante SR"], rows),
    )
    realised = [row[1] for row in rows]
    ex_ante = [row[2] for row in rows]
    # wider uncertainty monotonically erodes both notions of SR
    assert realised == sorted(realised, reverse=True)
    assert ex_ante == sorted(ex_ante, reverse=True)
    assert realised[0] == pytest.approx(complete)


def test_x5_carry_asymmetry(benchmark, params):
    def sweep():
        rows = []
        for q in (0.0, 0.002, 0.005):
            sr_yield_a = CarryBackwardInduction(params, 2.0, yield_a=q).success_rate()
            sr_yield_b = CarryBackwardInduction(params, 2.0, yield_b=q).success_rate()
            rows.append([q, sr_yield_a, sr_yield_b])
        return rows

    rows = benchmark(sweep)
    emit(
        "X5 carry asymmetry",
        format_table(["yield", "SR (Token_a earns)", "SR (Token_b earns)"], rows),
    )
    sr_a = [row[1] for row in rows]
    sr_b = [row[2] for row in rows]
    # Token_a yield favours completion (Bob redeems sooner than refunds);
    # Token_b yield makes Bob prefer staying in Token_b -> SR falls
    assert sr_a == sorted(sr_a)
    assert sr_b == sorted(sr_b, reverse=True)


def test_x6_fees_vs_collateral(benchmark, params):
    def sweep():
        rows = []
        for size in (0.0, 0.02, 0.05, 0.1):
            sr_fees = FeeBackwardInduction(
                params, 2.0, fee_a=size, fee_b=size / 4
            ).success_rate()
            sr_collateral = collateral_success_rate(params, 2.0, size)
            rows.append([size, sr_fees, sr_collateral])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "X6 fees vs collateral",
        format_table(["size", "SR with fees", "SR with collateral"], rows),
    )
    fees = [row[1] for row in rows]
    collateral = [row[2] for row in rows]
    assert fees == sorted(fees, reverse=True)  # fees tax continuation
    assert collateral == sorted(collateral)   # collateral taxes defection
    for _size, sr_fee, sr_coll in rows[1:]:
        assert sr_coll > sr_fee


def test_x7_population_volatility(benchmark, params):
    curve = benchmark.pedantic(
        volatility_failure_curve,
        args=(params, PopulationSpec()),
        kwargs={"sigmas": (0.03, 0.08, 0.14), "n_pairs": 20, "seed": 7},
        rounds=1,
        iterations=1,
    )
    rows = [
        [o.sigma, f"{o.participation_rate:.0%}", o.failure_rate] for o in curve
    ]
    emit(
        "X7 Bisq anecdote",
        format_table(["sigma", "participation", "failure rate"], rows),
    )
    failures = [o.failure_rate for o in curve]
    assert failures == sorted(failures)
    assert failures[0] < 0.05  # calm market: Bisq's few-percent regime


def test_x7_backtest_calibration(benchmark, params):
    def run():
        series = PlainGBMGenerator(mu=0.002, sigma=0.08).generate(
            2.0, 900, RandomState(21)
        )
        return SwapBacktester(params, window=168, step=24).run(series)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("X7 backtest", report.describe())
    assert report.viability_rate > 0.8
    assert report.calibration_gap < 0.2
    assert report.brier_score < 0.25
