"""Benchmark S4: what the fault-injection machinery costs.

Not a paper artifact -- this prices the robustness layer. Three
measurements: (a) the overhead of a *disabled* injector (the
``NullInjector`` path every production caller takes) versus a service
built without ``faults=`` at all, which must stay under 2%; (b) the
wall-clock cost of healing a pool break -- a ``worker_crash`` on one
request of a batch, measured as the extra time over a fault-free run
of the same batch (pool teardown + rebuild + requeue); (c) the cost of
quarantining a corrupt disk-cache entry versus a plain miss.

Under ``REPRO_BENCH_SMOKE=1`` (the CI smoke lane) the timing
assertions relax; the correctness assertions always hold.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import emit
from repro.faults import FaultSpec, InjectionPlan
from repro.service.api import SwapService
from repro.service.cache import DiskCache
from repro.service.requests import SolveRequest

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
OVERHEAD_CEILING = 0.02  # disabled injector must cost < 2%
PSTARS = [1.6 + 0.05 * k for k in range(8)]
ROUNDS = 30


def _requests():
    return [SolveRequest(pstar=pstar) for pstar in PSTARS]


def _best_of(fn, rounds):
    """Best-of-N wall time: robust against scheduler noise."""
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_disabled_injector_overhead_under_2_percent():
    bare = SwapService(max_workers=1)
    nulled = SwapService(max_workers=1)  # faults=None -> NULL_INJECTOR
    assert not nulled.faults.enabled

    # warm both memory caches so the measured loop is pure hot path
    bare.run_batch(_requests())
    nulled.run_batch(_requests())
    assert [i.unwrap().success_rate for i in bare.run_batch(_requests())] == [
        i.unwrap().success_rate for i in nulled.run_batch(_requests())
    ]

    bare_s = _best_of(lambda: bare.run_batch(_requests()), ROUNDS)
    nulled_s = _best_of(lambda: nulled.run_batch(_requests()), ROUNDS)
    overhead = nulled_s / bare_s - 1.0

    emit(
        "S4 disabled-injector overhead (warm 8-point batch, best of 30)",
        f"no injector   : {bare_s * 1e6:.1f}us\n"
        f"null injector : {nulled_s * 1e6:.1f}us\n"
        f"overhead      : {overhead * 100:+.2f}% (ceiling {OVERHEAD_CEILING:.0%})",
    )
    if not SMOKE:
        assert overhead < OVERHEAD_CEILING, (
            f"disabled injector costs {overhead:.1%}"
        )


def test_pool_rebuild_recovery_latency():
    clean = SwapService(max_workers=2)
    clean.run_batch(_requests())  # warm: imports, pool spin-up
    t0 = time.perf_counter()
    baseline_items = clean.run_batch(
        [SolveRequest(pstar=p + 1.0) for p in PSTARS]
    )
    clean_s = time.perf_counter() - t0

    # after=8: the 8 warm-batch dispatches pass untouched, the 9th --
    # the first job of the measured batch -- crashes its worker
    plan = InjectionPlan(
        faults=(FaultSpec(kind="worker_crash", after=8, count=1),), seed=3
    )
    chaotic = SwapService(max_workers=2, faults=plan)
    chaotic.run_batch(_requests())  # warm: imports, decisions 1-8
    t0 = time.perf_counter()
    healed_items = chaotic.run_batch(
        [SolveRequest(pstar=p + 1.0) for p in PSTARS]
    )
    healed_s = time.perf_counter() - t0

    assert all(item.ok for item in healed_items)
    assert [i.unwrap().success_rate for i in healed_items] == [
        i.unwrap().success_rate for i in baseline_items
    ]
    assert chaotic.faults.injected_total("worker_crash") >= 1
    recovery = healed_s - clean_s

    emit(
        "S4 pool-rebuild recovery (8-point batch, one worker_crash)",
        f"fault-free batch : {clean_s * 1e3:.1f}ms\n"
        f"healed batch     : {healed_s * 1e3:.1f}ms\n"
        f"recovery cost    : {recovery * 1e3:.1f}ms "
        f"(teardown + rebuild + requeue)",
    )
    if not SMOKE:
        assert healed_s < 60.0  # healing is bounded, never a hang


def test_quarantine_cost_versus_plain_miss(tmp_path):
    service = SwapService(max_workers=1, cache_dir=str(tmp_path / "seed"))
    request = SolveRequest(pstar=2.0)
    service.run_batch([request])  # populate one disk entry
    [entry] = list((tmp_path / "seed").glob("*.json"))

    miss_cache = DiskCache(str(tmp_path / "seed"))
    t0 = time.perf_counter()
    assert miss_cache.get("no-such-key") is None
    miss_s = time.perf_counter() - t0

    entry.write_text('{"key": "rotten')  # torn write
    corrupt_cache = DiskCache(str(tmp_path / "seed"))
    key = entry.name[: -len(".json")]
    t0 = time.perf_counter()
    assert corrupt_cache.get(key) is None
    quarantine_s = time.perf_counter() - t0

    assert corrupt_cache.stats.corrupt == 1
    assert entry.with_name(entry.name + ".quarantine").exists()
    assert not entry.exists()

    emit(
        "S4 quarantine cost (one corrupt entry vs plain miss)",
        f"plain miss : {miss_s * 1e6:.1f}us\n"
        f"quarantine : {quarantine_s * 1e6:.1f}us "
        f"(read + decode attempt + rename)",
    )
    if not SMOKE:
        assert quarantine_s < 0.5  # a rename, not a rebuild
