"""Benchmark X2: ablations of the solver design choices.

* continuous closed-form solver vs the independent lattice game
  (accuracy and cost of each);
* quadrature order (DESIGN.md's 96-node default vs alternatives);
* rational (dynamic-threshold) vs myopic (pointwise-profit) agents --
  quantifying what the paper's backward induction buys.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.agents import MyopicAgent, rational_pair
from repro.core.backward_induction import BackwardInduction
from repro.games.builders import build_swap_game, lattice_equilibrium_summary
from repro.protocol.messages import SwapOutcome
from repro.protocol.swap import SwapProtocol
from repro.stochastic.paths import sample_decision_prices
from repro.stochastic.rng import RandomState


def test_continuous_solver_cost(benchmark, params):
    def solve():
        solver = BackwardInduction(params, 2.0)
        return solver.success_rate(), solver.alice_t1_cont()

    sr, _value = benchmark(solve)
    assert sr == pytest.approx(0.714, abs=0.01)


def test_lattice_solver_cost_and_accuracy(benchmark, params):
    exact = BackwardInduction(params, 2.0).success_rate()

    def solve():
        tree = build_swap_game(params, 2.0, n_lattice=96)
        return lattice_equilibrium_summary(tree)

    summary = benchmark.pedantic(solve, rounds=2, iterations=1)
    emit(
        "X2 lattice-vs-continuous",
        f"lattice SR={summary.success_rate:.4f} continuous SR={exact:.4f}",
    )
    assert summary.success_rate == pytest.approx(exact, abs=0.01)


def test_quadrature_order_ablation(benchmark, params):
    """Lower orders are cheaper but must stay within tolerance of the default."""

    def sweep():
        reference = BackwardInduction(params, 2.0, quad_order=192).alice_t1_cont()
        errors = {}
        for order in (16, 32, 64, 96):
            value = BackwardInduction(params, 2.0, quad_order=order).alice_t1_cont()
            errors[order] = abs(value - reference)
        return errors

    errors = benchmark(sweep)
    emit("X2 quadrature ablation", str(errors))
    # the log-space transform makes the integrand so smooth that even 16
    # nodes are converged to machine precision; the default of 96 is pure
    # safety margin (this is the ablation's finding)
    assert all(err < 1e-9 for err in errors.values())


def test_rational_vs_myopic_agents(benchmark, params):
    """Protocol-level ablation: replace equilibrium strategies with the
    myopic pointwise rule and measure the outcome shift."""

    def run_batch(myopic: bool, n: int = 400):
        rng = RandomState(4242)
        prices = sample_decision_prices(
            params.process, params.p0, params.grid, rng, n
        )
        secret_rng = RandomState(2424)
        completed = 0
        for row in prices:
            if myopic:
                alice, bob = MyopicAgent("alice"), MyopicAgent("bob")
            else:
                alice, bob = rational_pair(params, 2.0)
            record = SwapProtocol(params, 2.0, alice, bob, rng=secret_rng).run(row)
            if record.outcome is SwapOutcome.COMPLETED:
                completed += 1
        return completed / n

    myopic_sr = benchmark.pedantic(run_batch, args=(True,), rounds=1, iterations=1)
    rational_sr = run_batch(False)
    emit(
        "X2 rational-vs-myopic",
        f"rational SR={rational_sr:.4f} myopic SR={myopic_sr:.4f}",
    )
    # myopic agents defect whenever pointwise unprofitable: with both
    # sides myopic, completion requires the price to stay on the knife's
    # edge, so their success rate is far below the equilibrium one
    assert myopic_sr < rational_sr
