"""Benchmark X1: Monte Carlo validation of the analytic success rate.

Not a paper artifact -- the paper derives SR analytically -- but the
reproduction's correctness argument: strategy-level and protocol-level
simulation must land inside the CI around Eq. (31)/(40).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.simulation import empirical_success_rate, validate_against_analytic


def test_strategy_level_validation(benchmark, params):
    empirical, analytic = benchmark.pedantic(
        validate_against_analytic,
        args=(params, 2.0),
        kwargs={"n_paths": 200_000, "seed": 42},
        rounds=1,
        iterations=1,
    )
    emit(
        "X1 strategy-level",
        f"analytic={analytic:.4f} empirical={empirical.success_rate:.4f} "
        f"CI=[{empirical.ci_low:.4f}, {empirical.ci_high:.4f}]",
    )
    assert empirical.contains(analytic)


def test_protocol_level_validation(benchmark, params):
    empirical, analytic = benchmark.pedantic(
        validate_against_analytic,
        args=(params, 2.0),
        kwargs={"n_paths": 2_000, "seed": 42, "protocol_level": True},
        rounds=1,
        iterations=1,
    )
    emit(
        "X1 protocol-level",
        f"analytic={analytic:.4f} empirical={empirical.success_rate:.4f} "
        f"CI=[{empirical.ci_low:.4f}, {empirical.ci_high:.4f}]",
    )
    assert empirical.contains(analytic)


def test_collateral_validation(benchmark, params):
    empirical, analytic = benchmark.pedantic(
        validate_against_analytic,
        args=(params, 2.0),
        kwargs={"n_paths": 100_000, "seed": 43, "collateral": 0.5},
        rounds=1,
        iterations=1,
    )
    emit(
        "X1 collateral",
        f"analytic={analytic:.4f} empirical={empirical.success_rate:.4f}",
    )
    assert empirical.contains(analytic)


def test_episode_throughput(benchmark, params):
    """Protocol-level episode throughput (full chain substrate per episode)."""
    result = benchmark.pedantic(
        empirical_success_rate,
        args=(params, 2.0),
        kwargs={"n_paths": 300, "seed": 44, "protocol_level": True},
        rounds=3,
        iterations=1,
    )
    assert result.n_initiated == 300
