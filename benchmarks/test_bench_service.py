"""Benchmark S1: the batched solve-and-validate service layer.

Not a paper artifact -- this measures the serving infrastructure the
analysis pipeline now runs on: (a) a warm two-tier cache must make a
repeated 50-point ``pstar`` sweep at least 10x faster than the cold
run, (b) ``validate_batch`` with 4 workers must beat the serial
wall-clock on a batch of Monte Carlo validation requests while staying
byte-identical to the serial results, and (c) the always-on
:mod:`repro.obs` instrumentation must cost < 5% wall-clock versus the
same workload served under a no-op registry.
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.conftest import emit
from repro.obs.metrics import NullRegistry, Registry, use_registry
from repro.service.api import SwapService
from repro.service.requests import ValidateRequest
from repro.service.serialize import encode_result

SWEEP_GRID = [1.0 + 0.05 * k for k in range(50)]

# Eight validation requests, sized so per-request Monte Carlo work
# (~2M paths each) dominates the ~1s process-pool spawn overhead.
def _validate_requests(params):
    return [
        ValidateRequest(
            pstar=1.6 + 0.1 * k, n_paths=2_000_000, seed=100 + k, params=params
        )
        for k in range(8)
    ]


def test_warm_cache_sweep_speedup(benchmark, params):
    service = SwapService()

    t0 = time.perf_counter()
    cold = service.sweep(SWEEP_GRID, params=params)
    cold_s = time.perf_counter() - t0

    warm, warm_s = benchmark.pedantic(
        lambda: (
            lambda t: (service.sweep(SWEEP_GRID, params=params), time.perf_counter() - t)
        )(time.perf_counter()),
        rounds=1,
        iterations=1,
    )

    speedup = cold_s / warm_s
    stats = service.stats()["memory"]
    emit(
        "S1 warm-cache sweep",
        f"grid=50 cold={cold_s * 1e3:.1f}ms warm={warm_s * 1e3:.1f}ms "
        f"speedup={speedup:.0f}x hits={stats['hits']} misses={stats['misses']}",
    )
    assert all(c.ok and w.ok for c, w in zip(cold, warm))
    assert all(w.cached for w in warm)
    assert [w.value for w in warm] == [c.value for c in cold]
    assert speedup >= 10.0


def test_parallel_validate_beats_serial(benchmark, params):
    requests = _validate_requests(params)

    serial_service = SwapService(max_workers=1)
    t0 = time.perf_counter()
    serial = serial_service.validate_batch(requests)
    serial_s = time.perf_counter() - t0

    parallel_service = SwapService(max_workers=4)
    parallel, parallel_s = benchmark.pedantic(
        lambda: (
            lambda t: (
                parallel_service.validate_batch(requests),
                time.perf_counter() - t,
            )
        )(time.perf_counter()),
        rounds=1,
        iterations=1,
    )

    cores = len(os.sched_getaffinity(0))
    emit(
        "S1 parallel validate",
        f"requests={len(requests)} paths=2.0M cores={cores} "
        f"serial={serial_s:.2f}s parallel(4)={parallel_s:.2f}s "
        f"speedup={serial_s / parallel_s:.2f}x",
    )
    # Determinism holds regardless of host: worker results must be
    # byte-identical to the serial run under the same seeds.
    for s, p in zip(serial, parallel):
        assert s.ok and p.ok
        assert json.dumps(encode_result(s.value), sort_keys=True) == json.dumps(
            encode_result(p.value), sort_keys=True
        )
    # Wall-clock win needs real parallelism; a single-core host can only
    # interleave, so the timing claim is asserted on multi-core machines.
    if cores >= 2:
        assert parallel_s < serial_s


def _cold_sweeps_seconds(registry, repeats: int = 3) -> float:
    """``repeats`` cold 50-point sweeps under ``registry``.

    A fresh service (empty cache) per sweep keeps every solve on the
    instrumented hot path; several sweeps per sample push the measured
    interval well past scheduler-noise granularity.
    """
    with use_registry(registry):
        t0 = time.perf_counter()
        for _ in range(repeats):
            items = SwapService().sweep(SWEEP_GRID)
            assert all(item.ok for item in items)
        return time.perf_counter() - t0


def test_instrumentation_overhead_under_5_percent(params):
    rounds = 7
    # Adjacent noop/live samples form one round, so a background-load
    # burst inflates both arms of the same ratio and cancels; real
    # instrumentation cost shows up in every round's ratio, so the
    # min-over-rounds only discards noise, never a true regression.
    noop_times, live_times, ratios = [], [], []
    for _ in range(rounds):
        noop_s = _cold_sweeps_seconds(NullRegistry())
        live_s = _cold_sweeps_seconds(Registry())
        noop_times.append(noop_s)
        live_times.append(live_s)
        ratios.append(live_s / noop_s)

    # Two noise-rejecting estimators; a genuine regression inflates
    # both, a load burst rarely corrupts both, so assert on the smaller.
    floor_ratio = min(live_times) / min(noop_times)
    overhead = min(min(ratios), floor_ratio) - 1.0
    emit(
        "S1 instrumentation overhead",
        f"grid=50x3 rounds={rounds} "
        f"noop_floor={min(noop_times) * 1e3:.1f}ms "
        f"live_floor={min(live_times) * 1e3:.1f}ms "
        f"overhead={overhead * 100:.1f}% "
        f"(per-round: {', '.join(f'{r - 1:+.1%}' for r in ratios)})",
    )
    assert overhead < 0.05
