"""Benchmark S1: the batched solve-and-validate service layer.

Not a paper artifact -- this measures the serving infrastructure the
analysis pipeline now runs on: (a) a warm two-tier cache must make a
repeated 50-point ``pstar`` sweep at least 10x faster than the cold
run, and (b) ``validate_batch`` with 4 workers must beat the serial
wall-clock on a batch of Monte Carlo validation requests while staying
byte-identical to the serial results.
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.conftest import emit
from repro.service.api import SwapService
from repro.service.requests import ValidateRequest
from repro.service.serialize import encode_result

SWEEP_GRID = [1.0 + 0.05 * k for k in range(50)]

# Eight validation requests, sized so per-request Monte Carlo work
# (~2M paths each) dominates the ~1s process-pool spawn overhead.
def _validate_requests(params):
    return [
        ValidateRequest(
            pstar=1.6 + 0.1 * k, n_paths=2_000_000, seed=100 + k, params=params
        )
        for k in range(8)
    ]


def test_warm_cache_sweep_speedup(benchmark, params):
    service = SwapService()

    t0 = time.perf_counter()
    cold = service.sweep(SWEEP_GRID, params=params)
    cold_s = time.perf_counter() - t0

    warm, warm_s = benchmark.pedantic(
        lambda: (
            lambda t: (service.sweep(SWEEP_GRID, params=params), time.perf_counter() - t)
        )(time.perf_counter()),
        rounds=1,
        iterations=1,
    )

    speedup = cold_s / warm_s
    stats = service.stats()["memory"]
    emit(
        "S1 warm-cache sweep",
        f"grid=50 cold={cold_s * 1e3:.1f}ms warm={warm_s * 1e3:.1f}ms "
        f"speedup={speedup:.0f}x hits={stats['hits']} misses={stats['misses']}",
    )
    assert all(c.ok and w.ok for c, w in zip(cold, warm))
    assert all(w.cached for w in warm)
    assert [w.value for w in warm] == [c.value for c in cold]
    assert speedup >= 10.0


def test_parallel_validate_beats_serial(benchmark, params):
    requests = _validate_requests(params)

    serial_service = SwapService(max_workers=1)
    t0 = time.perf_counter()
    serial = serial_service.validate_batch(requests)
    serial_s = time.perf_counter() - t0

    parallel_service = SwapService(max_workers=4)
    parallel, parallel_s = benchmark.pedantic(
        lambda: (
            lambda t: (
                parallel_service.validate_batch(requests),
                time.perf_counter() - t,
            )
        )(time.perf_counter()),
        rounds=1,
        iterations=1,
    )

    cores = len(os.sched_getaffinity(0))
    emit(
        "S1 parallel validate",
        f"requests={len(requests)} paths=2.0M cores={cores} "
        f"serial={serial_s:.2f}s parallel(4)={parallel_s:.2f}s "
        f"speedup={serial_s / parallel_s:.2f}x",
    )
    # Determinism holds regardless of host: worker results must be
    # byte-identical to the serial run under the same seeds.
    for s, p in zip(serial, parallel):
        assert s.ok and p.ok
        assert json.dumps(encode_result(s.value), sort_keys=True) == json.dumps(
            encode_result(p.value), sort_keys=True
        )
    # Wall-clock win needs real parallelism; a single-core host can only
    # interleave, so the timing claim is asserted on multi-core machines.
    if cores >= 2:
        assert parallel_s < serial_s
