"""Benchmark S2: the HTTP serving layer versus in-process calls.

Not a paper artifact -- this prices the wire. The same
:class:`~repro.service.api.SwapService` is measured two ways: called
directly in process, and fronted by :class:`~repro.server.SwapServer`
over loopback HTTP. Reported per mode: requests/second plus p50/p99
latency for (a) a warm single solve and (b) a 64-line JSONL batch.
The HTTP tax must stay in protocol territory -- warm single-solve p50
under 25 ms and at least 40 req/s through the server -- and the
payloads must be byte-identical to the in-process results.
"""

from __future__ import annotations

import json
import statistics
import time

from benchmarks.conftest import emit
from repro.server import ServerConfig, SwapServer
from repro.server.client import SwapClient
from repro.service.api import SwapService
from repro.service.jsonl import render_records, serve_lines

SINGLE_ROUNDS = 200
BATCH_ROUNDS = 20
BATCH_LINES = [
    json.dumps({"kind": "solve", "pstar": 1.0 + 0.02 * k}) for k in range(64)
]


def _latencies(fn, rounds):
    """Run ``fn`` ``rounds`` times; per-call seconds, first call dropped."""
    fn()  # warm caches / keep-alive before measuring
    samples = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return samples


def _stats(samples):
    ordered = sorted(samples)
    p50 = statistics.median(ordered)
    p99 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]
    rps = len(samples) / sum(samples)
    return p50, p99, rps


def _fmt(label, samples):
    p50, p99, rps = _stats(samples)
    return f"{label}: p50={p50 * 1e3:.2f}ms p99={p99 * 1e3:.2f}ms {rps:.0f} req/s"


def test_http_single_solve_overhead(benchmark):
    service = SwapService()
    server = SwapServer(ServerConfig(port=0), service=service)
    server.start()
    try:
        client = SwapClient(f"http://127.0.0.1:{server.port}", timeout=30.0)

        inproc = _latencies(lambda: service.solve(pstar=2.0), SINGLE_ROUNDS)
        http = _latencies(lambda: client.solve(pstar=2.0), SINGLE_ROUNDS)
        benchmark.pedantic(
            lambda: client.solve(pstar=2.0), rounds=10, iterations=1
        )

        assert client.solve(pstar=2.0) == service.solve(pstar=2.0)

        http_p50, _p99, http_rps = _stats(http)
        emit(
            "S2 single solve (warm cache)",
            f"{_fmt('in-process', inproc)}\n{_fmt('http      ', http)}\n"
            f"http tax p50={((http_p50 - _stats(inproc)[0]) * 1e3):.2f}ms",
        )
        assert http_p50 < 0.025  # loopback + JSON, not solver work
        assert http_rps >= 40.0
    finally:
        server.shutdown(drain=False)


def test_http_batch64_overhead(benchmark):
    service = SwapService()
    server = SwapServer(ServerConfig(port=0), service=service)
    server.start()
    try:
        client = SwapClient(f"http://127.0.0.1:{server.port}", timeout=30.0)
        requests = [json.loads(line) for line in BATCH_LINES]

        inproc = _latencies(
            lambda: serve_lines(service, BATCH_LINES), BATCH_ROUNDS
        )
        http = _latencies(lambda: client.batch(requests), BATCH_ROUNDS)
        benchmark.pedantic(
            lambda: client.batch(requests), rounds=5, iterations=1
        )

        # the wire format is the in-process JSONL format, byte for byte
        _ok, reference = serve_lines(service, BATCH_LINES)
        over_http = client.batch(requests)
        assert (
            "\n".join(json.dumps(r, separators=(",", ":")) for r in over_http)
            == render_records(reference).rstrip("\n")
        )

        http_p50, _p99, http_rps = _stats(http)
        lines_per_s = len(BATCH_LINES) * http_rps
        emit(
            "S2 batch of 64 JSONL lines (warm cache)",
            f"{_fmt('in-process', inproc)}\n{_fmt('http      ', http)}\n"
            f"throughput={lines_per_s:.0f} lines/s over http",
        )
        assert http_p50 < 0.25
    finally:
        server.shutdown(drain=False)
