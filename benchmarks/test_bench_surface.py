"""Benchmark S5: precomputed surfaces with certified interpolation.

Not a paper artifact -- this measures the ``repro.surface`` serving
tier against the exact engine on the 256-point Figure 6 curve:

* every surface-served point agrees with the exact solver within its
  certified per-cell bound (and the granted tolerance);
* off-surface points fall through to the engine and come back
  *bit-identical* to a direct ``solve_grid`` call;
* the warm path's p50 per-point latency is at least 10x faster than a
  single-point engine solve.

Under ``REPRO_BENCH_SMOKE=1`` (the CI smoke lane) the timing assertion
is skipped -- shared runners make wall-clock ratios flaky -- but the
accuracy and bit-identity assertions always hold.
"""

from __future__ import annotations

import os
import statistics
import time

import pytest

from benchmarks.conftest import emit
from repro.core.engine import solve_grid
from repro.service import SwapService
from repro.surface import AxisSpec, SurfaceSpec, warm_surface

CURVE_POINTS = 256
SPEEDUP_FLOOR = 10.0
TOLERANCE = 5e-3
AXIS_POINTS = 129


def _figure6_grid():
    lo, hi = 1.2, 3.2
    return [
        lo + (hi - lo) * i / (CURVE_POINTS - 1.0) for i in range(CURVE_POINTS)
    ]


@pytest.fixture(scope="module")
def warm(params, tmp_path_factory):
    """A service backed by a freshly warmed Figure 6 surface artifact."""
    spec = SurfaceSpec(
        axes=(AxisSpec("pstar", 1.2, 3.2, AXIS_POINTS),),
        params=params,
        default_tolerance=TOLERANCE,
    )
    path = tmp_path_factory.mktemp("bench-surface") / "figure6.srf"
    surface = warm_surface(spec, path)
    return SwapService(surface=surface, tolerance=TOLERANCE), surface


def test_curve_within_certified_bound(warm, params):
    service, surface = warm
    pstars = _figure6_grid()
    exact = solve_grid(params, pstars).success_rate
    items = service.sweep(pstars)

    surface_points = 0
    worst_error = 0.0
    worst_margin = 0.0  # error as a fraction of the certified bound
    for item, truth in zip(items, exact):
        answer = item.unwrap()
        if item.source != "surface":
            continue  # uncertifiable cells fall through and are exact
        surface_points += 1
        error = abs(answer.success_rate - float(truth))
        worst_error = max(worst_error, error)
        worst_margin = max(worst_margin, error / answer.bound)
        assert error <= answer.bound, (
            f"certified bound violated at P*={answer.pstar}: "
            f"|dSR| {error:.3e} > bound {answer.bound:.3e}"
        )
        assert answer.bound <= TOLERANCE

    share = surface_points / len(pstars)
    emit(
        "surface accuracy, 256-point Figure 6 curve",
        f"surface share : {surface_points}/{len(pstars)} ({share:.0%})\n"
        f"max |dSR|     : {worst_error:.2e} (tolerance {TOLERANCE:g})\n"
        f"max err/bound : {worst_margin:.2f}\n"
        f"max cell bound: {surface.max_bound:.2e}",
    )
    assert share >= 0.5, f"surface certified only {share:.0%} of the curve"


def test_off_surface_points_bit_identical_to_engine(warm, params):
    service, _surface = warm
    beyond = [3.4, 3.6, 3.8]  # past the pstar axis: must fall through
    items = service.sweep(beyond)
    assert [item.source for item in items] == ["engine"] * len(beyond)
    exact = solve_grid(params, beyond).success_rate
    for item, truth in zip(items, exact):
        assert item.unwrap().success_rate == float(truth)


def test_warm_p50_speedup(warm, params):
    service, surface = warm
    sample = _figure6_grid()[::4]

    surface_times = []
    for pstar in sample:
        t0 = time.perf_counter()
        answer = surface.answer(params, pstar, tolerance=TOLERANCE)
        elapsed = time.perf_counter() - t0
        if answer is not None:
            surface_times.append(elapsed)
    assert surface_times, "no point on the curve was certifiable"

    engine_times = []
    for pstar in sample[:: max(1, len(sample) // 16)]:
        t0 = time.perf_counter()
        solve_grid(params, [pstar])
        engine_times.append(time.perf_counter() - t0)

    surface_p50 = statistics.median(surface_times)
    engine_p50 = statistics.median(engine_times)
    speedup = engine_p50 / surface_p50 if surface_p50 > 0 else float("inf")
    emit(
        "surface warm path, per-point latency",
        f"surface p50 : {surface_p50 * 1e6:.0f}us "
        f"({len(surface_times)} certified lookups)\n"
        f"engine p50  : {engine_p50 * 1e3:.2f}ms\n"
        f"speedup     : {speedup:.0f}x (floor {SPEEDUP_FLOOR}x)",
    )
    if os.environ.get("REPRO_BENCH_SMOKE") != "1":
        assert speedup >= SPEEDUP_FLOOR, (
            f"warm path only {speedup:.1f}x faster than the engine"
        )
