"""Benchmark S6: the sharded asyncio tier under closed-loop load.

Not a paper artifact -- this prices the serving topology. A
closed-loop harness (N worker threads, each with its own keep-alive
connection, each firing its next request the instant the previous one
answers) drives warm single solves through three stacks:

* the S2 methodology (serial client, a fresh connection per request)
  against the threaded server -- the recorded baseline's twin;
* a keep-alive closed loop against the threaded server;
* the same closed loop against the real sharded tier
  (``serve --replicas 2``: asyncio router + replica subprocesses).

The acceptance floor encodes the PR target: the sharded tier must
sustain at least **5x the S2 bench's recorded single-solve floor**
(S2 asserts >= 40 req/s; S6 asserts >= 200 req/s), beat the measured
S2-methodology baseline outright, and keep p99 bounded under
admission. On this 1-CPU container the shards cannot multiply
*compute* -- the headline win is the serving path itself (keep-alive
without the 40 ms Nagle/delayed-ACK stall the threaded stack used to
hit, admission intact, failover for free); on a multi-core box the
replicas scale the solve capacity too.

Under ``REPRO_BENCH_SMOKE=1`` the timing floors are skipped and the
round counts shrink; the topology and correctness assertions remain.
"""

from __future__ import annotations

import http.client
import json
import os
import socket
import statistics
import threading
import time

from benchmarks.conftest import emit
from repro.server import RouterServer, ServerConfig, SwapServer
from repro.server.client import SwapClient

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
WARM_PSTARS = [1.6, 1.8, 2.0, 2.2]  # spread across both keyslices
ROUNDS_PER_WORKER = 40 if SMOKE else 400
SERIAL_ROUNDS = 30 if SMOKE else 200
CONCURRENCY = 8
S2_FLOOR_RPS = 40.0  # the S2 bench's own CI-safe single-solve floor

BODIES = [
    json.dumps(
        {"kind": "solve", "pstar": pstar, "collateral": 0.0},
        separators=(",", ":"),
    ).encode()
    for pstar in WARM_PSTARS
]


class _NoDelayConnection(http.client.HTTPConnection):
    """Keep-alive connection with Nagle off (the harness must never
    measure its own socket buffering)."""

    def connect(self) -> None:
        super().connect()
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)


def closed_loop(port: int, concurrency: int, rounds: int):
    """``concurrency`` keep-alive workers, ``rounds`` requests each.

    Returns ``(rps, p50_seconds, p99_seconds)`` over all requests.
    """
    latencies = []
    lock = threading.Lock()
    failures = []

    def worker(offset: int) -> None:
        connection = _NoDelayConnection("127.0.0.1", port, timeout=60)
        mine = []
        try:
            for i in range(rounds):
                body = BODIES[(offset + i) % len(BODIES)]
                t0 = time.perf_counter()
                connection.request(
                    "POST",
                    "/v1/solve",
                    body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                payload = response.read()
                if response.status != 200 or not json.loads(payload)["ok"]:
                    failures.append((response.status, payload[:200]))
                    return
                mine.append(time.perf_counter() - t0)
        finally:
            connection.close()
            with lock:
                latencies.extend(mine)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(concurrency)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    assert not failures, f"closed loop saw failures: {failures[:3]}"
    ordered = sorted(latencies)
    p50 = statistics.median(ordered)
    p99 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]
    return len(ordered) / wall, p50, p99


def _warm(port: int) -> None:
    client = SwapClient(f"http://127.0.0.1:{port}", timeout=60.0)
    for pstar in WARM_PSTARS:
        client.solve(pstar=pstar)


def _fmt(label: str, rps: float, p50: float, p99: float) -> str:
    return (
        f"{label}: {rps:.0f} req/s  p50={p50 * 1e3:.2f}ms  p99={p99 * 1e3:.2f}ms"
    )


def test_sharded_closed_loop_throughput():
    config = dict(workers=4, queue_depth=64)
    threaded = SwapServer(ServerConfig(port=0, **config)).start()
    router = RouterServer(
        ServerConfig(port=0, replicas=2, **config)
    )
    try:
        router.start()
        _warm(threaded.port)
        _warm(router.port)

        # the S2 methodology: serial, fresh connection per request
        serial_client = SwapClient(
            f"http://127.0.0.1:{threaded.port}", timeout=60.0
        )
        t0 = time.perf_counter()
        for i in range(SERIAL_ROUNDS):
            serial_client.solve(pstar=WARM_PSTARS[i % len(WARM_PSTARS)])
        serial_rps = SERIAL_ROUNDS / (time.perf_counter() - t0)

        threaded_rps, threaded_p50, threaded_p99 = closed_loop(
            threaded.port, CONCURRENCY, ROUNDS_PER_WORKER
        )
        sharded_rps, sharded_p50, sharded_p99 = closed_loop(
            router.port, CONCURRENCY, ROUNDS_PER_WORKER
        )

        # both shards took traffic (the keyspace really is split)
        metrics_text = SwapClient(
            f"http://127.0.0.1:{router.port}", timeout=60.0
        ).metrics()
        per_replica = {
            line.split("{")[1].split("}")[0]: float(line.rsplit(" ", 1)[1])
            for line in metrics_text.splitlines()
            if line.startswith("repro_router_requests_total{")
        }
        assert len(per_replica) == 2
        assert min(per_replica.values()) > 0

        emit(
            "S6 sharded tier, closed-loop warm single solves",
            "\n".join(
                [
                    f"serial urllib (S2 methodology): {serial_rps:.0f} req/s",
                    _fmt(
                        f"threaded  keep-alive c={CONCURRENCY}",
                        threaded_rps,
                        threaded_p50,
                        threaded_p99,
                    ),
                    _fmt(
                        f"sharded x2 keep-alive c={CONCURRENCY}",
                        sharded_rps,
                        sharded_p50,
                        sharded_p99,
                    ),
                    f"sharded vs S2 floor ({S2_FLOOR_RPS:.0f} req/s): "
                    f"{sharded_rps / S2_FLOOR_RPS:.1f}x",
                    f"router traffic split: {per_replica}",
                ]
            ),
        )

        if not SMOKE:
            # the PR target: >= 5x the S2 single-solve floor, beating
            # the S2-methodology baseline outright, p99 bounded
            assert sharded_rps >= 5.0 * S2_FLOOR_RPS
            assert sharded_rps > serial_rps
            assert sharded_p99 < 0.1
    finally:
        router.shutdown(drain=False)
        threaded.shutdown(drain=False)


def test_sharded_failover_costs_one_reroute_not_an_outage():
    """Kill one replica mid-load: the closed loop must keep answering
    (fail-over + breaker), with zero failed requests."""
    config = dict(workers=2, queue_depth=64)
    router = RouterServer(ServerConfig(port=0, replicas=2, **config))
    try:
        router.start()
        _warm(router.port)
        victim = router._replica_set.replicas[0]
        victim.stop(drain=False)
        rps, p50, p99 = closed_loop(
            router.port, 4, 20 if SMOKE else 100
        )
        emit(
            "S6 failover (one replica killed mid-run)",
            _fmt("sharded x1-of-2", rps, p50, p99),
        )
        assert rps > 0  # closed_loop already asserted zero failures
    finally:
        router.shutdown(drain=False)
