"""Benchmark X10: welfare analysis of the exchange rate choice."""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.analysis.welfare import optimal_rates, welfare_curve


def test_x10_optimal_rates(benchmark, params):
    rates = benchmark.pedantic(optimal_rates, args=(params,), rounds=1, iterations=1)
    emit("X10 rate comparison", rates.describe())
    # P* is the Token_a price Alice pays per Token_b: her optimal rate
    # is below Bob's
    assert rates.alice_optimal[0] < rates.bob_optimal[0]
    # the welfare optimum mediates between them
    lo = min(rates.alice_optimal[0], rates.bob_optimal[0])
    hi = max(rates.alice_optimal[0], rates.bob_optimal[0])
    assert lo <= rates.welfare_optimal[0] <= hi
    # under the symmetric Table III defaults, the SR-optimal rate is close
    # to (but not identical with) the welfare-optimal one
    assert rates.sr_optimal[0] == pytest.approx(rates.welfare_optimal[0], abs=0.3)


def test_x10_gains_from_trade_concave(benchmark, params):
    def curve():
        return welfare_curve(params, [1.6, 1.8, 2.0, 2.2, 2.4])

    points = benchmark(curve)
    gains = [p.gains_from_trade for p in points]
    emit(
        "X10 gains from trade",
        "  ".join(f"GFT({p.pstar:g})={g:.4f}" for p, g in zip(points, gains)),
    )
    assert all(g > 0.0 for g in gains)
    # interior maximum
    assert max(gains) > gains[0]
    assert max(gains) > gains[-1]
