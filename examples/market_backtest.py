"""Walk-forward backtest of the swap model across market regimes.

The paper's first future-work direction: "simulation studies can be
performed based on our model framework ... using real market data".
Offline, we substitute synthetic markets with the statistical features
that matter (see DESIGN.md):

* plain GBM -- the model's own world; predictions should be calibrated;
* regime-switching volatility -- clustering, the Bisq-anecdote regime;
* Merton jump-diffusion -- tails the model does not assume.

At each attempt the backtester estimates (mu, sigma) from trailing
data only, picks the SR-maximising exchange rate, predicts the success
probability, and plays the swap against the realized path.

Run: ``python examples/market_backtest.py``
"""

from repro import SwapParameters
from repro.analysis.report import format_table
from repro.marketdata import (
    JumpDiffusionGenerator,
    PlainGBMGenerator,
    RegimeSwitchingGenerator,
    SwapBacktester,
)
from repro.stochastic.rng import RandomState


def main() -> None:
    base = SwapParameters.default()
    backtester = SwapBacktester(base, window=168, step=12)
    n_hours = 1500

    markets = {
        "plain GBM (sigma=0.08)": PlainGBMGenerator(mu=0.002, sigma=0.08).generate(
            2.0, n_hours, RandomState(101)
        ),
        "regime-switching": RegimeSwitchingGenerator().generate(
            2.0, n_hours, RandomState(102)
        )[0],
        "jump-diffusion": JumpDiffusionGenerator().generate(
            2.0, n_hours, RandomState(103)
        ),
    }

    rows = []
    for name, series in markets.items():
        report = backtester.run(series)
        rows.append(
            [
                name,
                f"{report.viability_rate:.0%}",
                report.mean_predicted_success_rate,
                report.realized_success_rate,
                report.calibration_gap,
                report.brier_score,
            ]
        )

    print(
        format_table(
            ["market", "viable", "predicted SR", "realized SR", "gap", "Brier"],
            rows,
            title=f"Walk-forward backtest ({n_hours}h hourly series, "
            "168h estimation window)",
        )
    )
    print(
        "\nReading: on GBM data (the model's own assumption) the prediction\n"
        "gap is sampling noise that shrinks with more attempts; regime\n"
        "switches and jumps add systematic miscalibration on top -- the\n"
        "model risk a production deployment of this analysis would carry."
    )


if __name__ == "__main__":
    main()
