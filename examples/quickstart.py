"""Quickstart: solve the paper's default swap game end to end.

Reproduces, in one run:
* the equilibrium structure at ``P* = 2`` (thresholds, regions,
  Figure 3-5 quantities),
* the feasible exchange-rate window of Eq. (29) -- ``(1.5, 2.5)`` under
  Table III defaults,
* the success-rate curve of Eq. (31) and its maximiser (Figure 6's
  baseline curve).

Run: ``python examples/quickstart.py``
"""

from repro import (
    SwapParameters,
    feasible_pstar_range,
    max_success_rate,
    solve,
    success_rate_curve,
)


def main() -> None:
    params = SwapParameters.default()

    print("=== The swap game at the agreed rate P* = 2 ===")
    equilibrium = solve(params, pstar=2.0)
    print(equilibrium.summary())

    print("\n=== Feasible exchange-rate window (paper Eq. 29) ===")
    bounds = feasible_pstar_range(params)
    assert bounds is not None
    print(f"Alice initiates for P* in ({bounds[0]:.4f}, {bounds[1]:.4f})")
    print("(the paper reports (1.5, 2.5) under Table III defaults)")

    print("\n=== Success rate across the window (Eq. 31) ===")
    grid = [1.6, 1.8, 2.0, 2.2, 2.4]
    for point in success_rate_curve(params, grid):
        tag = "feasible" if point.feasible else "infeasible"
        print(f"  SR({point.pstar:.2f}) = {point.rate:.4f}  [{tag}]")

    located = max_success_rate(params)
    assert located is not None
    best_pstar, best_rate = located
    print(f"\nSR is maximised at P* = {best_pstar:.4f} with SR = {best_rate:.4f}")
    print("(concave in P*, interior maximum -- Figure 6's headline shape)")


if __name__ == "__main__":
    main()
