"""How much timelock padding does an HTLC swap need?

The paper's timeline (Eq. 13) assumes constant confirmation times; real
chains confirm with variance. This example injects confirmation jitter
into the executable substrate and measures, with *honest* agents on a
flat price (so every failure is a timing artifact):

* completion rate,
* handshake failures (a deploy confirmed after the counterparty's
  verification time -- a clean abort),
* **atomicity violations** (the dangerous case: Alice's claim confirms
  after t_b while her revealed secret already let Bob redeem Token_a).

Two defences are swept: an *expiry margin* padding both timelocks, and
a *waiting slack* padding the decision schedule. The finding: each one
alone is insufficient -- waiting without padded timelocks even
increases violations -- but together they restore full atomicity at the
cost of a longer worst-case lock time.

Run: ``python examples/timeout_safety.py``
"""

from repro import SwapParameters
from repro.analysis.report import format_table
from repro.simulation.robustness import timing_robustness_sweep


def main() -> None:
    params = SwapParameters.default()
    points = timing_robustness_sweep(
        params,
        jitters=(0.0, 0.1, 0.25),
        margins=(0.0, 2.0),
        wait_slacks=(0.0, 1.0),
        n_runs=250,
        seed=2021,
    )

    rows = []
    for point in points:
        rows.append(
            [
                f"{point.jitter:.0%}",
                point.margin,
                point.wait_slack,
                f"{point.completion_rate:.1%}",
                f"{point.handshake_failure_rate:.1%}",
                f"{point.violation_rate:.2%}",
            ]
        )
    print(
        format_table(
            ["jitter", "expiry margin (h)", "wait slack (h)",
             "completed", "handshake fail", "ATOMICITY VIOLATION"],
            rows,
            title="Timing robustness (honest agents, flat price, 250 runs/cell)",
        )
    )

    base = max(params.grid.t7, params.grid.t8)
    padded = base + 2.0 + 2 * 1.0 + params.tau_a  # margins + two waits
    print(
        f"\nCost of safety: worst-case lock time grows from {base:.0f}h "
        f"(paper's zero-slack schedule) to ~{padded:.0f}h with "
        "margin 2h + wait 1h."
    )
    print(
        "Reading: the paper's Eq. (13) schedule leaves zero slack, so any\n"
        "confirmation variance either aborts the handshake or -- far worse --\n"
        "lets a revealed secret be redeemed while the revealer's own claim\n"
        "misses its timelock. Pad BOTH the schedule and the timelocks."
    )


if __name__ == "__main__":
    main()
