"""Serve the solver over HTTP and consume it with the retrying client.

Demonstrates, in one run:
* starting :class:`repro.server.SwapServer` on an ephemeral port
  (in production you would run ``repro-swaps serve --port 8100``),
* single solves and Monte Carlo validation through
  :class:`repro.server.SwapClient` -- decoded into the same frozen
  result objects the in-process API returns,
* a JSONL batch and a sweep over the feasible exchange-rate window,
* the client's backoff discipline against 429/503 responses,
* scraping ``/metrics`` and draining the server gracefully.

Run: ``python examples/http_client.py``
"""

from repro.server import RetryPolicy, ServerConfig, SwapClient, SwapServer


def main() -> None:
    # Port 0 binds an ephemeral port; server.port reports the choice.
    server = SwapServer(ServerConfig(port=0, queue_depth=8))
    server.start()
    base_url = f"http://127.0.0.1:{server.port}"
    print(f"=== Serving on {base_url} ===")

    # Retries apply only to 429 (queue full), 503 (draining), and
    # envelopes the server marks retryable -- a 400 fails immediately.
    client = SwapClient(
        base_url,
        retry=RetryPolicy(max_attempts=4, base_delay=0.05, max_delay=2.0),
    )
    print(f"ready: {client.ready()}  version: {client.version()['version']}")

    print("\n=== Single solve at P* = 2 (decoded result object) ===")
    equilibrium = client.solve(pstar=2.0)
    print(f"success rate  : {equilibrium.success_rate:.4f}")
    print(f"p3 threshold  : {equilibrium.p3_threshold:.4f}")

    print("\n=== Monte Carlo validation over the wire ===")
    outcome = client.validate(pstar=2.0, n_paths=20_000, seed=7)
    print(f"analytic SR   : {outcome.analytic:.4f}")
    print(f"empirical SR  : {outcome.empirical.success_rate:.4f}")

    print("\n=== JSONL batch (same wire format as `repro-swaps batch`) ===")
    records = client.batch(
        [
            {"kind": "solve", "pstar": 1.8},
            {"kind": "solve", "pstar": 2.2},
            {"kind": "solve", "pstar": -1.0},  # in-band structured error
        ]
    )
    for record in records:
        if record["ok"]:
            rate = record["result"]["success_rate"]
            print(f"  ok   line {record['line']}: SR = {rate:.4f}")
        else:
            code = record["error"]["code"]
            print(f"  fail line {record['line']}: {code}")

    print("\n=== Sweep across the feasible window ===")
    for point in client.sweep([1.6, 1.8, 2.0, 2.2, 2.4]):
        print(f"  SR({point['pstar']:.2f}) = {point['success_rate']:.4f}")

    print("\n=== A few repro_http_* metrics ===")
    for line in client.metrics().splitlines():
        if line.startswith("repro_http_requests_total"):
            print(f"  {line}")

    drained = server.shutdown()  # stop accepting, finish in flight
    print(f"\ndrained cleanly: {drained}")


if __name__ == "__main__":
    main()
