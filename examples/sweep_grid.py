"""Vectorised sweeps: a whole Figure 6 curve in one array solve.

Shows the grid engine against the classic per-point loop:

* :func:`repro.solve_grid` evaluates a 256-point ``P*`` grid as one
  batch of array kernels -- one lognormal law, one quadrature rule,
  one vectorised bisection for every point at once;
* the same curve via per-point :func:`repro.solve` calls, timed for
  comparison (expect roughly an order of magnitude between them);
* the returned :class:`repro.EquilibriumGrid` is columnar: aligned
  arrays of thresholds, utilities, and success rates, with
  ``equilibrium_at(i)`` materialising a classic per-point equilibrium
  on demand.

Run: ``python examples/sweep_grid.py``
"""

import time

from repro import SwapParameters, solve_grid
from repro.core.backward_induction import BackwardInduction

POINTS = 256


def main() -> None:
    params = SwapParameters.default()
    lo, hi = 1.2, 3.2
    pstars = [lo + (hi - lo) * i / (POINTS - 1.0) for i in range(POINTS)]

    print(f"=== SR(P*) on {POINTS} points, one vectorised solve ===")
    t0 = time.perf_counter()
    grid = solve_grid(params, pstars)
    grid_s = time.perf_counter() - t0
    print(f"grid engine: {grid_s * 1e3:.1f} ms")

    t0 = time.perf_counter()
    scalar = [BackwardInduction(params, k).success_rate() for k in pstars]
    scalar_s = time.perf_counter() - t0
    print(f"scalar loop: {scalar_s * 1e3:.1f} ms  ({scalar_s / grid_s:.1f}x slower)")

    worst = max(abs(g - s) for g, s in zip(grid.success_rate, scalar))
    print(f"max |grid - scalar| = {worst:.2e}  (contract: <= 1e-9)")

    print("\n=== Columnar access ===")
    for i in range(0, POINTS, POINTS // 8):
        flag = "initiates" if grid.alice_initiates[i] else "stays out"
        print(
            f"  P* = {grid.pstars[i]:.3f}  SR = {grid.success_rate[i]:.4f}  "
            f"P_t3 = {grid.p3_threshold[i]:.4f}  Alice {flag}"
        )

    print("\n=== Materialising one point ===")
    i_best = int(max(range(POINTS), key=lambda i: grid.success_rate[i]))
    equilibrium = grid.equilibrium_at(i_best)
    print(f"best grid point P* = {equilibrium.pstar:.4f}:")
    print(equilibrium.summary())


if __name__ == "__main__":
    main()
