"""Multi-party cycles and packetized swaps (`repro.swapgraph`).

Walks the X11 experiment end to end:
* a 3-party cycle A->B->C->A solved as an extensive-form game on a
  recombining price lattice, with the equilibrium replayed on three
  simulated chains,
* the cost of cycle length (success rate falls with every extra leg),
* packetization of the paper's two-party swap (two packets help,
  many packets drown in round-trip discounting),
* the closed-form regression anchor: a paper-shaped spec delegates to
  the exact solver and matches it to <= 1e-9.

Run: ``python examples/swap_graph.py``
"""

from repro.api import swap_graph
from repro.core.parameters import SwapParameters
from repro.core.solver import solve_swap_game
from repro.swapgraph import SwapGraphSpec


def main() -> None:
    print("=== A 3-party cycle, solved and replayed on-chain ===")
    result = swap_graph(
        SwapGraphSpec.cycle(3), replay=True, replay_paths=300, seed=17
    )
    eq = result.equilibrium
    print(f"mode        : {eq.mode} ({eq.node_count} game nodes, "
          f"m={eq.n_lattice} lattice factors)")
    print(f"initiated   : {eq.initiated}")
    print(f"success rate: {eq.success_rate:.4f}")
    for name in sorted(eq.utilities):
        print(f"  U({name}) = {eq.utilities[name]:.4f}")
    replay = result.replay
    assert replay is not None
    verdict = "PASS" if replay.passed else "FAIL"
    print(f"chain replay: {verdict} -- empirical {replay.empirical_rate:.4f} "
          f"vs predicted {replay.predicted_rate:.4f} over {replay.n_paths} "
          f"paths ({replay.mechanical_failures} mechanical failures)")

    print("\n=== Cycle length is expensive ===")
    for n in (2, 3, 4):
        eq = swap_graph(SwapGraphSpec.cycle(n), n_lattice=9).equilibrium
        tag = "initiated" if eq.initiated else "never starts"
        print(f"  n={n}: SR {eq.success_rate:.4f}  [{tag}]")

    print("\n=== Packetizing the paper's swap (1 h per step) ===")
    params = SwapParameters.default()
    for k in (1, 2, 4):
        spec = SwapGraphSpec.two_party(params, packets=k)
        if k > 1:
            spec = spec.replace(step_time=1.0)
        eq = swap_graph(spec).equilibrium
        print(f"  k={k}: SR {eq.success_rate:.4f}  [{eq.mode}]")
    print("(two packets beat one -- smaller stakes per round -- before")
    print(" round-trip discounting dominates)")

    print("\n=== Closed-form parity (the k=1/n=2 anchor) ===")
    reference = solve_swap_game(params, pstar=2.0)
    eq = swap_graph(SwapGraphSpec.two_party(params)).equilibrium
    drift = abs(eq.success_rate - reference.success_rate)
    print(f"graph SR {eq.success_rate:.10f} vs paper solver "
          f"{reference.success_rate:.10f} (|diff| = {drift:.1e})")
    assert drift <= 1e-9


if __name__ == "__main__":
    main()
