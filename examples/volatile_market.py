"""Volatility study: when does an HTLC swap stop being viable?

The paper's Section III-F4 finds that higher volatility reduces the
maximum achievable success rate, and the Bisq anecdote in Section II-A
("3-5% of transactions fail ... the percentage increases during periods
of higher market volatility") matches the model's prediction. This
example quantifies both effects:

1. max-SR as a function of sigma,
2. the critical volatility above which *no* exchange rate makes the
   swap worth initiating,
3. the failure-rate band the model implies for calm vs turbulent
   markets.

Run: ``python examples/volatile_market.py``
"""

import numpy as np

from repro import SwapParameters, max_success_rate
from repro.analysis.report import format_table
from repro.core.feasible_range import feasible_pstar_range
from repro.simulation.scenarios import scenario


def critical_sigma(params: SwapParameters, lo: float = 0.01, hi: float = 0.5) -> float:
    """Largest volatility with a non-empty feasible P* window (bisection)."""
    if feasible_pstar_range(params.replace(sigma=hi)) is not None:
        return hi
    for _ in range(40):
        mid = 0.5 * (lo + hi)
        if feasible_pstar_range(params.replace(sigma=mid)) is not None:
            lo = mid
        else:
            hi = mid
    return lo


def main() -> None:
    base = SwapParameters.default()

    print("=== Max success rate vs volatility (Section III-F4) ===")
    rows = []
    for sigma in np.linspace(0.02, 0.18, 9):
        params = base.replace(sigma=float(sigma))
        located = max_success_rate(params)
        if located is None:
            rows.append([float(sigma), "non-viable", "non-viable", "-"])
        else:
            best_pstar, best_rate = located
            rows.append(
                [float(sigma), best_pstar, best_rate, f"{(1 - best_rate):.1%} fail"]
            )
    print(
        format_table(
            ["sigma", "SR-max P*", "max SR", "implied failure rate"],
            rows,
            title="volatility sweep",
        )
    )

    sigma_crit = critical_sigma(base)
    print(f"\ncritical volatility (no viable P* beyond): sigma ~= {sigma_crit:.4f}")

    print("\n=== Named market scenarios ===")
    rows = []
    for name in ("calm_market", "default", "volatile_market"):
        params = scenario(name)
        located = max_success_rate(params)
        if located is None:
            rows.append([name, params.sigma, "non-viable", "-"])
        else:
            rows.append([name, params.sigma, located[1], f"{1 - located[1]:.1%}"])
    print(
        format_table(
            ["scenario", "sigma", "max SR", "failure rate"],
            rows,
        )
    )
    print(
        "\nReading: in a calm market (sigma ~= 0.05/sqrt(hour)) the model\n"
        "predicts a few-percent failure rate -- the same order as the 3-5%\n"
        "arbitration rate Bisq reports -- and, matching the Bisq anecdote,\n"
        "failures climb steeply with volatility until, near the critical\n"
        "sigma above, the swap market disappears entirely."
    )


if __name__ == "__main__":
    main()
