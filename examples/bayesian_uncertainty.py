"""What is Assumption 7 worth? Uncertainty about the counterparty.

The paper assumes each agent *knows* the other's success premium
(complete information) and announces, among its contributions, a study
of "the game with uncertainty in counterparties' success premium".
This example runs that study:

1. success rate as the belief about the counterparty widens (mean-
   preserving spreads around the true alpha = 0.3);
2. the information value: complete-info SR minus incomplete-info SR;
3. how pessimistic beliefs kill initiation entirely -- an anonymous
   P2P environment (no reputation signal) can fail to trade even
   between two honest parties.

Run: ``python examples/bayesian_uncertainty.py``
"""

from repro import SwapParameters
from repro.analysis.report import format_table
from repro.core.backward_induction import BackwardInduction
from repro.core.bayesian import BayesianSwapGame, TypeDistribution


def main() -> None:
    params = SwapParameters.default()
    pstar = 2.0
    complete_sr = BackwardInduction(params, pstar).success_rate()
    print(f"complete-information SR at P* = {pstar}: {complete_sr:.4f}\n")

    print("=== Mean-preserving spreads of the belief around alpha = 0.3 ===")
    rows = []
    for half_width in (0.0, 0.1, 0.2, 0.3):
        if half_width == 0.0:
            belief = TypeDistribution.point(0.3)
        else:
            belief = TypeDistribution.uniform(
                [0.3 - half_width, 0.3, 0.3 + half_width]
            )
        game = BayesianSwapGame(params, pstar, belief, belief)
        realised = game.realised_success_rate()
        rows.append(
            [
                f"alpha in {{{', '.join(f'{v:.1f}' for v in belief.values)}}}",
                realised,
                game.ex_ante_success_rate(),
                complete_sr - realised,
                "yes" if game.alice_initiates() else "no",
            ]
        )
    print(
        format_table(
            ["belief support", "realised SR", "ex-ante SR", "info value", "initiates"],
            rows,
        )
    )

    print("\n=== A market without reputation ===")
    pessimistic = TypeDistribution.uniform([0.0, 0.1, 0.2])
    game = BayesianSwapGame(
        params, pstar, TypeDistribution.point(0.3), pessimistic
    )
    print(
        "Alice (alpha = 0.3, honest) facing an anonymous Bob she believes\n"
        f"has alpha in {{0.0, 0.1, 0.2}}: initiates? "
        f"{'yes' if game.alice_initiates() else 'NO'}"
    )
    print(
        "\nReading: the success premium partly encodes reputation\n"
        "(Section III-F1). Removing the mutual-knowledge assumption makes\n"
        "Bob hedge against dishonest Alices (narrower t2 region) and can\n"
        "stop trade altogether -- quantifying why reputation systems and\n"
        "collateral matter in anonymous P2P swaps."
    )


if __name__ == "__main__":
    main()
