"""Collateral sizing: how much deposit buys how much reliability?

Section IV shows collateral deposits raise the success rate (Figure 9)
and argues deposits "can be dynamically adjusted depending on the terms
of the swap and optimization goal". This example does that design
exercise:

1. SR as a function of Q at a fixed rate (Figure 9's vertical reading),
2. the minimal Q achieving a target SR (e.g. 99%),
3. a comparison against the initiator-only *premium* mechanism of
   Han et al. (the paper's Section II-C baseline) at equal stake.

Run: ``python examples/collateral_design.py``
"""

import numpy as np

from repro import SwapParameters
from repro.analysis.report import format_table
from repro.core.collateral import collateral_success_rate
from repro.core.premium import PremiumBackwardInduction


def minimal_collateral(
    params: SwapParameters, pstar: float, target: float, hi: float = 5.0
) -> float:
    """Smallest Q with SR >= target (bisection; SR is increasing in Q)."""
    if collateral_success_rate(params, pstar, hi) < target:
        raise ValueError(f"target SR {target} unreachable even with Q = {hi}")
    lo = 0.0
    for _ in range(40):
        mid = 0.5 * (lo + hi)
        if collateral_success_rate(params, pstar, mid) >= target:
            hi = mid
        else:
            lo = mid
    return hi


def main() -> None:
    params = SwapParameters.default()
    pstar = 2.0

    print(f"=== SR vs collateral at P* = {pstar} (Figure 9, vertical cut) ===")
    rows = []
    for q in (0.0, 0.1, 0.2, 0.5, 1.0, 2.0):
        rows.append([q, collateral_success_rate(params, pstar, q)])
    print(format_table(["Q (Token_a each)", "SR"], rows))

    print("\n=== Minimal deposit for a target reliability ===")
    rows = []
    for target in (0.8, 0.9, 0.95, 0.99):
        q_needed = minimal_collateral(params, pstar, target)
        rows.append([f"{target:.0%}", q_needed, f"{q_needed / pstar:.1%} of notional"])
    print(format_table(["target SR", "minimal Q", "relative size"], rows))

    print("\n=== Collateral vs premium mechanism at equal stake ===")
    rows = []
    for stake in (0.2, 0.5, 1.0):
        sr_collateral = collateral_success_rate(params, pstar, stake)
        sr_premium = PremiumBackwardInduction(params, pstar, stake).success_rate()
        rows.append([stake, sr_collateral, sr_premium])
    print(
        format_table(
            ["stake", "SR symmetric collateral", "SR initiator premium"],
            rows,
        )
    )
    print(
        "\nReading: the premium mechanism only disciplines Alice's t3\n"
        "optionality; Bob can still walk away at t2 when Token_b rallies,\n"
        "so symmetric collateral dominates at every stake level -- the\n"
        "motivation for the paper's Section IV design."
    )


if __name__ == "__main__":
    main()
