"""Precomputed surfaces: warm once, answer sweeps in microseconds.

Walks the full surface lifecycle on the Figure 6 curve:

* **warm** -- :func:`repro.surface.warm_surface` fills a dense ``P*``
  grid with exact engine solves, certifies a per-cell interpolation
  error bound by probing edge midpoints, and writes a checksummed,
  memory-mapped artifact (what ``repro-swaps warm`` does);
* **serve** -- a :class:`repro.service.SwapService` pointed at the
  artifact routes sweeps down the answer-source chain: surface ->
  cache -> engine -> scalar. Points the artifact certifies within the
  granted tolerance are interpolated without touching a solver;
* **trust** -- every interpolated answer is compared against the exact
  engine here, and the measured error must sit inside the certified
  bound it was served with. Off-surface requests fall through and stay
  exact automatically.

Run: ``python examples/warm_surface.py``
"""

import tempfile
import time
from pathlib import Path

from repro import SwapParameters, solve_grid
from repro.service import SwapService
from repro.surface import AxisSpec, SurfaceSpec, warm_surface

POINTS = 256
TOLERANCE = 5e-3


def main() -> None:
    params = SwapParameters.default()
    lo, hi = 1.2, 3.2
    pstars = [lo + (hi - lo) * i / (POINTS - 1.0) for i in range(POINTS)]

    with tempfile.TemporaryDirectory() as scratch:
        path = Path(scratch) / "figure6.srf"

        print("=== Warming the artifact (offline, exact solves) ===")
        spec = SurfaceSpec(
            axes=(AxisSpec("pstar", lo, hi, 129),),
            params=params,
            default_tolerance=TOLERANCE,
        )
        t0 = time.perf_counter()
        surface = warm_surface(spec, path)
        print(f"built + certified in {time.perf_counter() - t0:.2f}s")
        info = surface.info()
        print(f"artifact : {path.name}  ({path.stat().st_size} bytes)")
        print(f"checksum : {info['checksum'][:16]}...")
        print(f"max bound: {info['max_bound']:.2e}")

        print("\n=== Serving the Figure 6 curve through the chain ===")
        service = SwapService(surface=surface, tolerance=TOLERANCE)
        t0 = time.perf_counter()
        items = service.sweep(pstars)
        warm_ms = (time.perf_counter() - t0) * 1e3
        sources = [item.source for item in items]
        print(f"sweep    : {warm_ms:.1f} ms for {POINTS} points")
        print(f"surface  : {sources.count('surface')}/{POINTS} points")

        t0 = time.perf_counter()
        exact = solve_grid(params, pstars).success_rate
        exact_ms = (time.perf_counter() - t0) * 1e3
        print(f"engine   : {exact_ms:.1f} ms for the same curve "
              f"({exact_ms / warm_ms:.1f}x the warm sweep)")

        print("\n=== Interpolated vs exact, bound by bound ===")
        worst = 0.0
        for item, truth in zip(items, exact):
            if item.source != "surface":
                continue
            answer = item.unwrap()
            error = abs(answer.success_rate - float(truth))
            assert error <= answer.bound, "certified bound violated"
            worst = max(worst, error)
        print(f"max |interpolated - exact| = {worst:.2e}")
        print(f"granted tolerance          = {TOLERANCE:g}")
        print("every error sat inside the bound it was served with")

        print("\n=== Off-surface requests stay exact ===")
        item = service.sweep([3.5])[0]
        truth = float(solve_grid(params, [3.5]).success_rate[0])
        print(f"P* = 3.5 is beyond the axis -> source={item.source!r}, "
              f"bit-identical: {item.unwrap().success_rate == truth}")

        print("\n=== Exactness on demand ===")
        item = service.sweep([2.0], tolerance=0.0)[0]
        print(f"tolerance=0.0 -> source={item.source!r} (the surface is "
              "skipped when exactness is demanded)")


if __name__ == "__main__":
    main()
