"""Validate the closed-form analysis against simulation, three ways.

1. **Strategy-level Monte Carlo**: sample GBM decision prices, apply
   the derived threshold strategies, compare the empirical success
   rate with the Eq. (31) integral.
2. **Protocol-level Monte Carlo**: run full chain-substrate episodes
   (HTLC deploys, mempool secret observation, refunds) -- same
   comparison, now validating the executable system.
3. **Lattice game cross-check**: solve the swap as a generic
   extensive-form game on a price lattice with the independent
   backward-induction engine from :mod:`repro.games`, and compare root
   utilities / SR with the continuous solver.

Run: ``python examples/validate_model.py``
"""

from repro import SwapParameters
from repro.analysis.report import format_table
from repro.core import BackwardInduction
from repro.games import build_swap_game, lattice_equilibrium_summary
from repro.simulation import validate_against_analytic


def main() -> None:
    params = SwapParameters.default()
    pstar = 2.0

    print("=== 1. Strategy-level Monte Carlo (200k paths) ===")
    rows = []
    for q in (0.0, 0.5):
        empirical, analytic = validate_against_analytic(
            params, pstar, n_paths=200_000, seed=11, collateral=q
        )
        rows.append(
            [
                q,
                analytic,
                empirical.success_rate,
                f"[{empirical.ci_low:.4f}, {empirical.ci_high:.4f}]",
                "PASS" if empirical.contains(analytic) else "FAIL",
            ]
        )
    print(format_table(["Q", "analytic SR", "empirical SR", "95% CI", "verdict"], rows))

    print("\n=== 2. Protocol-level Monte Carlo (3000 full episodes) ===")
    empirical, analytic = validate_against_analytic(
        params, pstar, n_paths=3_000, seed=23, protocol_level=True
    )
    print(
        f"analytic SR = {analytic:.4f}; protocol-level empirical SR = "
        f"{empirical.success_rate:.4f} "
        f"(95% CI [{empirical.ci_low:.4f}, {empirical.ci_high:.4f}]) -> "
        f"{'PASS' if empirical.contains(analytic) else 'FAIL'}"
    )

    print("\n=== 3. Independent lattice-game cross-check ===")
    continuous = BackwardInduction(params, pstar)
    tree = build_swap_game(params, pstar, n_lattice=128)
    lattice = lattice_equilibrium_summary(tree)
    bounds = continuous.bob_t2_region().bounds()
    rows = [
        ["Alice t1 value", continuous.alice_t1_cont(), lattice.alice_root_value],
        ["Bob t1 value", continuous.bob_t1_cont(), lattice.bob_root_value],
        ["success rate", continuous.success_rate(), lattice.success_rate],
        ["Bob region low", bounds[0], lattice.bob_cont_prices[0]],
        ["Bob region high", bounds[1], lattice.bob_cont_prices[-1]],
    ]
    print(format_table(["quantity", "continuous solver", "lattice game"], rows))


if __name__ == "__main__":
    main()
