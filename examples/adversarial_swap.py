"""Protocol-level runs with honest, strategic, and faulty agents.

Exercises the executable substrate (two simulated chains, HTLCs,
mempool, automatic refunds) against agent behaviours the analysis talks
about:

* honest x honest -- every initiated swap completes (Table I flows);
* rational x rational -- the paper's equilibrium: failures appear
  exactly when prices cross the thresholds;
* Bob defecting at t2 / Alice defecting at t3 -- clean aborts (both
  parties refunded: the HTLC "make the best out of worst" property);
* Bob *crashing* after Alice reveals -- the one case where HTLC value
  atomicity breaks: Alice ends up with both assets (Section II-C's
  crash-failure discussion).

Run: ``python examples/adversarial_swap.py``
"""

from repro import SwapParameters
from repro.agents import AlwaysStopAgent, CrashingAgent, HonestAgent, rational_pair
from repro.analysis.report import format_table
from repro.protocol import SwapProtocol
from repro.protocol.messages import Stage
from repro.stochastic.rng import RandomState


def run_case(name, params, pstar, alice, bob, prices, seed):
    protocol = SwapProtocol(params, pstar, alice, bob, rng=RandomState(seed))
    record = protocol.run(prices)
    return [
        name,
        record.outcome.value,
        f"{record.balance_change('alice', 'TOKEN_A'):+.2f}",
        f"{record.balance_change('alice', 'TOKEN_B'):+.2f}",
        f"{record.balance_change('bob', 'TOKEN_A'):+.2f}",
        f"{record.balance_change('bob', 'TOKEN_B'):+.2f}",
    ]


def main() -> None:
    params = SwapParameters.default()
    pstar = 2.0
    flat = [2.0, 2.0, 2.0]
    crash_case = CrashingAgent(HonestAgent("bob"), Stage.T4_REDEEM)

    rows = [
        run_case("honest x honest", params, pstar,
                 HonestAgent("alice"), HonestAgent("bob"), flat, 1),
        run_case("rational, flat prices", params, pstar,
                 *rational_pair(params, pstar), flat, 2),
        run_case("rational, Token_b crashes by t3", params, pstar,
                 *rational_pair(params, pstar), [2.0, 2.0, 1.0], 3),
        run_case("rational, Token_b rallies by t2", params, pstar,
                 *rational_pair(params, pstar), [2.0, 3.2, 3.2], 4),
        run_case("Bob defects at t2", params, pstar,
                 HonestAgent("alice"), AlwaysStopAgent(Stage.T2_LOCK), flat, 5),
        run_case("Alice defects at t3", params, pstar,
                 AlwaysStopAgent(Stage.T3_REVEAL), HonestAgent("bob"), flat, 6),
        run_case("Bob crashes at t4 (!)", params, pstar,
                 HonestAgent("alice"), crash_case, flat, 7),
    ]

    print(
        format_table(
            ["case", "outcome", "A dTok_a", "A dTok_b", "B dTok_a", "B dTok_b"],
            rows,
            title=f"Protocol-level outcomes at P* = {pstar}",
        )
    )
    print(
        "\nNote the last row: Alice's Token_a was refunded at expiry AND she\n"
        "claimed Bob's Token_b, because Bob crashed between Alice's reveal\n"
        "and his redeem. HTLCs guarantee nobody can *steal*, but a crashed\n"
        "party can still forfeit -- the atomicity caveat the paper cites\n"
        "from Zakhary et al."
    )


if __name__ == "__main__":
    main()
